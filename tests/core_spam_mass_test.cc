// Tests of spam-mass estimation beyond the Table 1 anchor (which lives in
// synth_paper_graphs_test.cc): scaling behavior of Section 3.5, the
// spam-core estimator, combination, and error paths.

#include "core/spam_mass.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "pagerank/solver.h"
#include "synth/paper_graphs.h"

namespace spammass {
namespace {

using core::CombineEstimates;
using core::EstimateSpamMass;
using core::EstimateSpamMassFromSpamCore;
using core::MassEstimates;
using core::SpamMassOptions;
using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

SpamMassOptions PreciseOptions() {
  SpamMassOptions opt;
  opt.solver.tolerance = 1e-14;
  opt.solver.max_iterations = 5000;
  return opt;
}

TEST(SpamMassTest, EmptyCoreRejected) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  EXPECT_FALSE(EstimateSpamMass(g, {}, PreciseOptions()).ok());
}

TEST(SpamMassTest, OutOfRangeCoreRejected) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  EXPECT_FALSE(EstimateSpamMass(g, {5}, PreciseOptions()).ok());
}

TEST(SpamMassTest, BadGammaRejected) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  SpamMassOptions opt = PreciseOptions();
  opt.gamma = 0.0;
  EXPECT_FALSE(EstimateSpamMass(g, {0}, opt).ok());
  opt.gamma = 1.5;
  EXPECT_FALSE(EstimateSpamMass(g, {0}, opt).ok());
}

TEST(SpamMassTest, RelativeMassIsOneMinusRatio) {
  auto fig = synth::MakeFigure2Graph();
  SpamMassOptions opt = PreciseOptions();
  opt.scale_core_jump = false;
  auto est = EstimateSpamMass(fig.graph, fig.good_core, opt);
  ASSERT_TRUE(est.ok());
  const MassEstimates& e = est.value();
  for (size_t i = 0; i < e.pagerank.size(); ++i) {
    EXPECT_NEAR(e.relative_mass[i],
                1.0 - e.core_pagerank[i] / e.pagerank[i], 1e-12);
    EXPECT_NEAR(e.absolute_mass[i], e.pagerank[i] - e.core_pagerank[i],
                1e-15);
    EXPECT_LE(e.relative_mass[i], 1.0 + 1e-12);
  }
}

TEST(SpamMassTest, UnscaledCoreUnderestimatesGoodContribution) {
  // Section 3.5 / 4.3: with the raw v^Ṽ⁺ jump, ‖p′‖ ≪ ‖p‖ and almost every
  // node's mass estimate approaches its full PageRank. Scaling to ‖w‖ = γ
  // fixes this. Build a graph with a small core over many good nodes.
  GraphBuilder b(200);
  for (NodeId i = 1; i < 200; ++i) b.AddEdge(i, (i * 7) % 199);
  WebGraph g = b.Build();
  std::vector<NodeId> core = {0, 1};

  SpamMassOptions unscaled = PreciseOptions();
  unscaled.scale_core_jump = false;
  SpamMassOptions scaled = PreciseOptions();
  scaled.gamma = 0.9;

  auto u = EstimateSpamMass(g, core, unscaled);
  auto s = EstimateSpamMass(g, core, scaled);
  ASSERT_TRUE(u.ok() && s.ok());
  double u_norm = 0, s_norm = 0, p_norm = 0;
  for (size_t i = 0; i < u.value().pagerank.size(); ++i) {
    u_norm += u.value().core_pagerank[i];
    s_norm += s.value().core_pagerank[i];
    p_norm += u.value().pagerank[i];
  }
  EXPECT_LT(u_norm, 0.05 * p_norm);  // ‖p′‖ ≪ ‖p‖
  EXPECT_GT(s_norm, 0.3 * p_norm);   // scaled jump restores the magnitude
}

TEST(SpamMassTest, CoreMembersCanGetNegativeMass) {
  // Section 3.5: scaled jumps overestimate the good contribution of core
  // members, driving their estimated mass negative.
  auto fig = synth::MakeFigure2Graph();
  SpamMassOptions opt = PreciseOptions();
  opt.gamma = 0.85;
  auto est = EstimateSpamMass(fig.graph, fig.good_core, opt);
  ASSERT_TRUE(est.ok());
  for (NodeId member : fig.good_core) {
    EXPECT_LT(est.value().absolute_mass[member], 0.0)
        << "core member " << member;
  }
}

TEST(SpamMassTest, SpamCoreEstimator) {
  auto fig = synth::MakeFigure2Graph();
  // Perfect spam core: M̂ should equal the actual mass.
  auto actual = core::ComputeActualSpamMass(fig.graph, fig.labels,
                                            PreciseOptions().solver);
  auto est = EstimateSpamMassFromSpamCore(
      fig.graph, fig.labels.SpamNodes(), PreciseOptions());
  ASSERT_TRUE(actual.ok() && est.ok());
  for (size_t i = 0; i < actual.value().absolute_mass.size(); ++i) {
    EXPECT_NEAR(est.value().absolute_mass[i],
                actual.value().absolute_mass[i], 1e-12);
  }
}

TEST(SpamMassTest, SpamCoreEmptyRejected) {
  auto fig = synth::MakeFigure2Graph();
  EXPECT_FALSE(
      EstimateSpamMassFromSpamCore(fig.graph, {}, PreciseOptions()).ok());
}

TEST(SpamMassTest, CombineEstimatesAverages) {
  auto fig = synth::MakeFigure2Graph();
  SpamMassOptions opt = PreciseOptions();
  opt.scale_core_jump = false;
  auto from_good = EstimateSpamMass(fig.graph, fig.good_core, opt);
  auto from_spam = EstimateSpamMassFromSpamCore(
      fig.graph, fig.labels.SpamNodes(), PreciseOptions());
  ASSERT_TRUE(from_good.ok() && from_spam.ok());
  MassEstimates combined =
      CombineEstimates(from_good.value(), from_spam.value(), 0.5);
  for (size_t i = 0; i < combined.absolute_mass.size(); ++i) {
    EXPECT_NEAR(combined.absolute_mass[i],
                0.5 * from_good.value().absolute_mass[i] +
                    0.5 * from_spam.value().absolute_mass[i],
                1e-12);
  }
  // Weight 1.0 reproduces the good-core estimate exactly.
  MassEstimates only_good =
      CombineEstimates(from_good.value(), from_spam.value(), 1.0);
  for (size_t i = 0; i < only_good.absolute_mass.size(); ++i) {
    EXPECT_NEAR(only_good.absolute_mass[i],
                from_good.value().absolute_mass[i], 1e-12);
  }
}

TEST(SpamMassTest, ActualMassLabelMismatchRejected) {
  auto fig = synth::MakeFigure2Graph();
  core::LabelStore wrong(5);
  EXPECT_FALSE(core::ComputeActualSpamMass(fig.graph, wrong,
                                           PreciseOptions().solver)
                   .ok());
}

TEST(SpamMassTest, AllGoodWebHasTinyActualMass) {
  GraphBuilder b(10);
  for (NodeId i = 0; i < 9; ++i) b.AddEdge(i, i + 1);
  WebGraph g = b.Build();
  core::LabelStore labels(10);  // everyone good
  auto actual =
      core::ComputeActualSpamMass(g, labels, PreciseOptions().solver);
  ASSERT_TRUE(actual.ok());
  for (double m : actual.value().absolute_mass) EXPECT_EQ(m, 0.0);
}

}  // namespace
}  // namespace spammass
