// Tests of log-binned histograms and summary statistics.

#include "util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spammass {
namespace {

using util::LogHistogram;
using util::Summarize;

TEST(LogHistogramTest, BinsDoubleInWidth) {
  LogHistogram h(1.0, 2.0);
  h.Add(1.0);   // [1, 2)
  h.Add(1.5);   // [1, 2)
  h.Add(2.0);   // [2, 4)
  h.Add(3.9);   // [2, 4)
  h.Add(4.0);   // [4, 8)
  auto bins = h.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_EQ(bins[1].count, 2u);
  EXPECT_EQ(bins[2].count, 1u);
  EXPECT_NEAR(bins[0].lower, 1.0, 1e-12);
  EXPECT_NEAR(bins[0].upper, 2.0, 1e-12);
  EXPECT_NEAR(bins[1].upper, 4.0, 1e-12);
}

TEST(LogHistogramTest, FractionsSumWithUnderflow) {
  LogHistogram h(1.0, 10.0);
  h.Add(0.5);   // underflow
  h.Add(-3.0);  // underflow
  h.Add(5.0);
  h.Add(50.0);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_EQ(h.underflow_count(), 2u);
  double frac = 0;
  for (const auto& b : h.bins()) frac += b.fraction;
  EXPECT_NEAR(frac, 0.5, 1e-12);
}

TEST(LogHistogramTest, CenterIsGeometricMean) {
  LogHistogram h(1.0, 4.0);
  h.Add(1.0);
  auto bins = h.bins();
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_NEAR(bins[0].center, 2.0, 1e-12);  // sqrt(1*4)
}

TEST(LogHistogramTest, AddCountBulk) {
  LogHistogram h(1.0, 2.0);
  h.AddCount(3.0, 1000);
  auto bins = h.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[1].count, 1000u);
  EXPECT_NEAR(bins[1].fraction, 1.0, 1e-12);
}

TEST(SummarizeTest, BasicMoments) {
  auto s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_NEAR(s.mean, 2.5, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(SummarizeTest, Empty) {
  auto s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, NegativeValues) {
  auto s = Summarize({-5.0, 5.0});
  EXPECT_EQ(s.min, -5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_NEAR(s.mean, 0.0, 1e-12);
}

}  // namespace
}  // namespace spammass
