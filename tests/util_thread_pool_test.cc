// Tests of the thread pool and of parallel Jacobi agreement.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "graph/graph_builder.h"
#include "pagerank/solver.h"
#include "util/random.h"

namespace spammass {
namespace {

using util::ThreadPool;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](uint64_t, uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(3, [&sum](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) sum.fetch_add(i + 1);
  });
  EXPECT_EQ(sum.load(), 6u);  // 1 + 2 + 3
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelJacobiTest, MatchesSerialSolution) {
  util::Rng rng(33);
  graph::GraphBuilder b(500);
  for (int e = 0; e < 2500; ++e) {
    auto u = static_cast<graph::NodeId>(rng.UniformIndex(500));
    auto v = static_cast<graph::NodeId>(rng.UniformIndex(500));
    if (u != v) b.AddEdge(u, v);
  }
  graph::WebGraph g = b.Build();
  pagerank::SolverOptions serial;
  serial.tolerance = 1e-13;
  serial.max_iterations = 2000;
  pagerank::SolverOptions parallel = serial;
  parallel.num_threads = 4;
  for (auto policy : {pagerank::DanglingPolicy::kLeak,
                      pagerank::DanglingPolicy::kRedistributeToJump}) {
    serial.dangling = parallel.dangling = policy;
    auto a = pagerank::ComputeUniformPageRank(g, serial);
    auto c = pagerank::ComputeUniformPageRank(g, parallel);
    ASSERT_TRUE(a.ok() && c.ok());
    EXPECT_EQ(a.value().iterations, c.value().iterations);
    for (graph::NodeId x = 0; x < g.num_nodes(); ++x) {
      EXPECT_DOUBLE_EQ(a.value().scores[x], c.value().scores[x]);
    }
  }
}

}  // namespace
}  // namespace spammass
