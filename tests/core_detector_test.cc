// Tests of Algorithm 2 thresholding and candidate ordering.

#include "core/detector.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using core::DetectorConfig;
using core::DetectSpamCandidates;
using core::MassEstimates;
using core::PageRankFilteredNodes;

/// Hand-built estimates for n nodes: scaled PageRank and relative mass per
/// node (unscaled internally).
MassEstimates MakeEstimates(const std::vector<double>& scaled_pagerank,
                            const std::vector<double>& relative_mass,
                            double damping = 0.85) {
  MassEstimates est;
  est.damping = damping;
  size_t n = scaled_pagerank.size();
  double unscale = (1.0 - damping) / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    est.pagerank.push_back(scaled_pagerank[i] * unscale);
    est.relative_mass.push_back(relative_mass[i]);
    est.absolute_mass.push_back(relative_mass[i] * scaled_pagerank[i] *
                                unscale);
    est.core_pagerank.push_back(est.pagerank[i] - est.absolute_mass[i]);
  }
  return est;
}

TEST(DetectorTest, AppliesBothThresholds) {
  // Nodes: 0 high-PR high-mass (detected), 1 high-PR low-mass, 2 low-PR
  // high-mass (filtered by ρ), 3 low-PR low-mass.
  MassEstimates est = MakeEstimates({50, 50, 2, 2}, {0.99, 0.1, 0.99, 0.1});
  DetectorConfig config;
  config.scaled_pagerank_threshold = 10;
  config.relative_mass_threshold = 0.5;
  auto candidates = DetectSpamCandidates(est, config);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].node, 0u);
  EXPECT_NEAR(candidates[0].scaled_pagerank, 50, 1e-9);
  EXPECT_NEAR(candidates[0].relative_mass, 0.99, 1e-12);
}

TEST(DetectorTest, ThresholdsAreInclusive) {
  MassEstimates est = MakeEstimates({10, 9.999}, {0.5, 0.5});
  DetectorConfig config;
  config.scaled_pagerank_threshold = 10;
  config.relative_mass_threshold = 0.5;
  auto candidates = DetectSpamCandidates(est, config);
  ASSERT_EQ(candidates.size(), 1u);  // node 0 exactly at both thresholds
  EXPECT_EQ(candidates[0].node, 0u);
}

TEST(DetectorTest, SortedByRelativeMassThenPageRank) {
  MassEstimates est =
      MakeEstimates({20, 30, 40, 25}, {0.7, 0.9, 0.9, 0.8});
  DetectorConfig config;
  config.scaled_pagerank_threshold = 10;
  config.relative_mass_threshold = 0.5;
  auto candidates = DetectSpamCandidates(est, config);
  ASSERT_EQ(candidates.size(), 4u);
  EXPECT_EQ(candidates[0].node, 2u);  // mass 0.9, PR 40
  EXPECT_EQ(candidates[1].node, 1u);  // mass 0.9, PR 30
  EXPECT_EQ(candidates[2].node, 3u);  // mass 0.8
  EXPECT_EQ(candidates[3].node, 0u);  // mass 0.7
}

TEST(DetectorTest, EmptyWhenNothingQualifies) {
  MassEstimates est = MakeEstimates({5, 5}, {0.99, 0.99});
  DetectorConfig config;  // default ρ = 10
  EXPECT_TRUE(DetectSpamCandidates(est, config).empty());
}

TEST(DetectorTest, NegativeMassNeverDetected) {
  MassEstimates est = MakeEstimates({100}, {-3.0});
  DetectorConfig config;
  config.relative_mass_threshold = 0.0;
  auto candidates = DetectSpamCandidates(est, config);
  EXPECT_TRUE(candidates.empty());
}

TEST(PageRankFilterTest, FilterSetMatchesThreshold) {
  MassEstimates est = MakeEstimates({1, 10, 100, 9.99}, {0, 0, 0, 0});
  auto filtered = PageRankFilteredNodes(est, 10.0);
  EXPECT_EQ(filtered, (std::vector<graph::NodeId>{1, 2}));
}

TEST(PageRankFilterTest, ZeroThresholdKeepsAll) {
  MassEstimates est = MakeEstimates({1, 2}, {0, 0});
  EXPECT_EQ(PageRankFilteredNodes(est, 0.0).size(), 2u);
}

}  // namespace
}  // namespace spammass
