// Tests of the synthetic host-name generator: category formats, TLD
// handling, and the registered-domain properties the site-aggregation
// experiments rely on (plain/spam hosts get distinct domains; community
// hosts share theirs).

#include "synth/host_name_gen.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/site_aggregation.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "util/logging.h"

namespace spammass {
namespace {

using graph::RegisteredDomain;
using synth::GenerateHostName;
using synth::HostCategory;

TEST(HostNameGenTest, CategoriesAreRecognizable) {
  util::Rng rng(1);
  EXPECT_NE(GenerateHostName(HostCategory::kPlain, "de", ".de", 7, &rng)
                .find("-de.de"),
            std::string::npos);
  EXPECT_EQ(GenerateHostName(HostCategory::kDirectory, "generic", ".com", 3,
                             &rng)
                .rfind("www.dir-", 0),
            0u);
  std::string gov =
      GenerateHostName(HostCategory::kGov, "usgov", ".us", 2, &rng);
  EXPECT_NE(gov.find(".gov"), std::string::npos);
  std::string edu = GenerateHostName(HostCategory::kEdu, "cz", ".cz", 5, &rng);
  EXPECT_NE(edu.find(".edu.cz"), std::string::npos);
  std::string target =
      GenerateHostName(HostCategory::kSpamTarget, "spam", ".biz", 1, &rng);
  EXPECT_EQ(target.rfind("www.buy-", 0), 0u);
}

TEST(HostNameGenTest, ComTldHasNoCountrySuffixOnGovEdu) {
  util::Rng rng(2);
  std::string gov =
      GenerateHostName(HostCategory::kGov, "generic", ".com", 0, &rng);
  EXPECT_EQ(gov.find(".com"), std::string::npos);
  EXPECT_EQ(gov.substr(gov.size() - 4), ".gov");
}

TEST(HostNameGenTest, DistinctIndicesGiveDistinctDomains) {
  util::Rng rng(3);
  std::set<std::string> domains;
  for (uint32_t i = 0; i < 200; ++i) {
    domains.insert(RegisteredDomain(
        GenerateHostName(HostCategory::kPlain, "generic", ".com", i, &rng)));
  }
  EXPECT_EQ(domains.size(), 200u);
}

TEST(HostNameGenTest, SpamNodesGetOwnDomains) {
  util::Rng rng(4);
  std::set<std::string> domains;
  for (uint32_t i = 0; i < 100; ++i) {
    domains.insert(RegisteredDomain(GenerateHostName(
        HostCategory::kSpamTarget, "spam", ".com", i, &rng)));
    domains.insert(RegisteredDomain(GenerateHostName(
        HostCategory::kExpiredDomain, "spam", ".com", i, &rng)));
  }
  EXPECT_EQ(domains.size(), 200u);
}

TEST(GeneratedWebNamesTest, IsolatedCommunitySharesOneDomain) {
  auto web = synth::GenerateWeb(synth::TinyScenario(17));
  CHECK_OK(web.status());
  uint32_t blog = web.value().RegionIndex("br-blog");
  ASSERT_LT(blog, web.value().config.regions.size());
  std::set<std::string> domains;
  for (graph::NodeId x = 0; x < web.value().graph.num_nodes(); ++x) {
    if (web.value().region_of_node[x] == blog && !web.value().is_hub[x]) {
      domains.insert(RegisteredDomain(web.value().graph.HostName(x)));
    }
  }
  EXPECT_EQ(domains.size(), 1u);  // the *.blogger.com.br pattern
}

TEST(GeneratedWebNamesTest, HostNamesAreUnique) {
  auto web = synth::GenerateWeb(synth::TinyScenario(19));
  CHECK_OK(web.status());
  std::set<std::string> names;
  for (graph::NodeId x = 0; x < web.value().graph.num_nodes(); ++x) {
    names.insert(std::string(web.value().graph.HostName(x)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(web.value().graph.num_nodes()));
}

}  // namespace
}  // namespace spammass
