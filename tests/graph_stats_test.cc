// Tests of the structural statistics used to reproduce Section 4.1.

#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace spammass {
namespace {

using graph::ComputeGraphStats;
using graph::GraphBuilder;
using graph::GraphStats;
using graph::WebGraph;

TEST(GraphStatsTest, CountsDanglingNoInlinkIsolated) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 2);
  // 4, 5 isolated; 2 dangling with inlinks; 0, 3 have no inlinks.
  WebGraph g = b.Build();
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_nodes, 6u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_EQ(s.no_outlinks, 3u);  // 2, 4, 5
  EXPECT_EQ(s.no_inlinks, 4u);   // 0, 3, 4, 5
  EXPECT_EQ(s.isolated, 2u);     // 4, 5
  EXPECT_NEAR(s.FractionNoOutlinks(), 0.5, 1e-12);
  EXPECT_NEAR(s.FractionNoInlinks(), 4.0 / 6, 1e-12);
  EXPECT_NEAR(s.FractionIsolated(), 2.0 / 6, 1e-12);
  EXPECT_EQ(s.max_indegree, 2u);
  EXPECT_EQ(s.max_outdegree, 1u);
  EXPECT_NEAR(s.mean_indegree, 0.5, 1e-12);
}

TEST(GraphStatsTest, EmptyGraph) {
  WebGraph g;
  GraphStats s = ComputeGraphStats(g);
  EXPECT_EQ(s.num_nodes, 0u);
  EXPECT_EQ(s.FractionIsolated(), 0.0);
}

TEST(GraphStatsTest, DegreeDistributions) {
  GraphBuilder b(5);
  b.AddEdge(0, 4);
  b.AddEdge(1, 4);
  b.AddEdge(2, 4);
  b.AddEdge(3, 4);
  WebGraph g = b.Build();
  auto in = graph::InDegreeDistribution(g);
  ASSERT_EQ(in.size(), 5u);  // up to degree 4
  EXPECT_EQ(in[0], 4u);
  EXPECT_EQ(in[4], 1u);
  auto out = graph::OutDegreeDistribution(g);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 4u);
}

TEST(GraphStatsTest, DistributionsSumToNodeCount) {
  GraphBuilder b(10);
  b.AddEdge(0, 1);
  b.AddEdge(2, 1);
  b.AddEdge(3, 4);
  WebGraph g = b.Build();
  uint64_t total = 0;
  for (uint64_t c : graph::InDegreeDistribution(g)) total += c;
  EXPECT_EQ(total, 10u);
  total = 0;
  for (uint64_t c : graph::OutDegreeDistribution(g)) total += c;
  EXPECT_EQ(total, 10u);
}

}  // namespace
}  // namespace spammass
