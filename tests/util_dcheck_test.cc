// Tests of the DCHECK family (util/logging.h) and the debug-build helpers
// (util/debug.h). The suite is compiled into both debug and release test
// runs: in debug builds DCHECK must die exactly like CHECK, in release
// builds it must vanish — including not evaluating its arguments.

#include "util/debug.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace spammass {
namespace {

using util::Status;

TEST(DCheckTest, PassingConditionsAreSilent) {
  // Must be a no-op in every build mode.
  DCHECK(true);
  DCHECK(1 + 1 == 2) << "basic arithmetic";
  DCHECK_EQ(4, 4);
  DCHECK_NE(4, 5);
  DCHECK_LT(1, 2);
  DCHECK_LE(2, 2);
  DCHECK_GT(3, 2);
  DCHECK_GE(3, 3);
  DCHECK_OK(Status::OK());
  SUCCEED();
}

TEST(DCheckTest, StreamedDetailCompilesInBothModes) {
  int x = 7;
  DCHECK_EQ(x, 7) << "x was " << x;
  DCHECK(x > 0) << "positive " << x;
  SUCCEED();
}

#ifndef NDEBUG

TEST(DCheckDeathTest, FailingDCheckDiesInDebugBuilds) {
  EXPECT_DEATH(DCHECK(false) << "boom", "Check failed: false");
  EXPECT_DEATH(DCHECK_EQ(1, 2), "Check failed");
  EXPECT_DEATH(DCHECK_GE(1, 2), "Check failed");
  EXPECT_DEATH(DCHECK_OK(Status::Internal("bad")), "bad");
}

TEST(DCheckTest, EvaluatesConditionInDebugBuilds) {
  int calls = 0;
  auto touch = [&calls] {
    ++calls;
    return true;
  };
  DCHECK(touch());
  EXPECT_EQ(calls, 1);
}

#else  // NDEBUG

TEST(DCheckTest, FailingDCheckIsANoOpInReleaseBuilds) {
  DCHECK(false) << "never printed, never fatal";
  DCHECK_EQ(1, 2);
  DCHECK_OK(Status::Internal("ignored"));
  SUCCEED();
}

TEST(DCheckTest, DoesNotEvaluateConditionInReleaseBuilds) {
  int calls = 0;
  auto touch = [&calls] {
    ++calls;
    return true;
  };
  DCHECK(touch());
  DCHECK_EQ(touch(), true);
  EXPECT_EQ(calls, 0);
}

#endif  // NDEBUG

TEST(DebugBuildTest, KDebugBuildMatchesNdebug) {
#ifdef NDEBUG
  EXPECT_FALSE(util::kDebugBuild);
  EXPECT_EQ(SPAMMASS_DCHECK_IS_ON(), 0);
#else
  EXPECT_TRUE(util::kDebugBuild);
  EXPECT_EQ(SPAMMASS_DCHECK_IS_ON(), 1);
#endif
}

TEST(DebugBuildTest, DebugOnlyRunsIffDebug) {
  int calls = 0;
  SPAMMASS_DEBUG_ONLY(++calls);
  EXPECT_EQ(calls, util::kDebugBuild ? 1 : 0);
}

}  // namespace
}  // namespace spammass
