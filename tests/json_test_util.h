// Minimal recursive-descent JSON parser for tests that need to validate
// real structure (trace files, metrics snapshots, manifests) instead of
// grepping for needles. Test-only: optimizes for clear failure messages
// over speed, and rejects anything outside the JSON grammar so malformed
// output fails loudly.

#ifndef SPAMMASS_TESTS_JSON_TEST_UTIL_H_
#define SPAMMASS_TESTS_JSON_TEST_UTIL_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spammass::testutil {

/// One parsed JSON value. Look up object members with operator[](key) and
/// array elements with operator[](index); both CHECK-style abort on type
/// mismatch via assertions in the accessors below.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool b = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  bool Has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }

  const JsonValue& operator[](const std::string& key) const {
    static const JsonValue null_value;
    auto it = object.find(key);
    return it == object.end() ? null_value : it->second;
  }

  const JsonValue& operator[](size_t index) const {
    static const JsonValue null_value;
    return index < array.size() ? array[index] : null_value;
  }
};

/// Parses `text`; on failure returns false and sets *error to a
/// position-annotated message.
class JsonParser {
 public:
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error) {
    JsonParser parser(text);
    if (!parser.ParseValue(out)) {
      *error = parser.error_ + " at offset " + std::to_string(parser.pos_);
      return false;
    }
    parser.SkipSpace();
    if (parser.pos_ != text.size()) {
      *error = "trailing content at offset " + std::to_string(parser.pos_);
      return false;
    }
    return true;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    error_ = message;
    return false;
  }

  bool Consume(char expected) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return Fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        return ParseLiteral("true", out, JsonValue::Type::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Type::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Type::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(const char* word, JsonValue* out, JsonValue::Type type,
                    bool value) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      return Fail(std::string("expected ") + word);
    }
    pos_ += len;
    out->type = type;
    out->b = value;
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return Fail("expected a number");
    pos_ += static_cast<size_t>(end - start);
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char ch = text_[pos_++];
      if (ch == '\\') {
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': ch = '\n'; break;
          case 't': ch = '\t'; break;
          case 'r': ch = '\r'; break;
          case 'b': ch = '\b'; break;
          case 'f': ch = '\f'; break;
          case '"': case '\\': case '/': ch = esc; break;
          case 'u': {
            // Tests only need ASCII round-trips; decode the code unit and
            // keep the low byte.
            if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
            ch = static_cast<char>(
                std::strtol(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
      }
      out->push_back(ch);
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->type = JsonValue::Type::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->type = JsonValue::Type::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace spammass::testutil

#endif  // SPAMMASS_TESTS_JSON_TEST_UTIL_H_
