// Dedicated tests of the truncated Neumann-series oracle.

#include "pagerank/neumann.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph_builder.h"
#include "pagerank/solver.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;
using pagerank::NeumannSeries;
using pagerank::NeumannTruncationBound;

constexpr double kC = 0.85;

TEST(NeumannTest, FirstTermIsJumpOnly) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  auto v = JumpVector::Uniform(3);
  auto series = NeumannSeries(g, v, kC, 1);
  for (NodeId x = 0; x < 3; ++x) {
    EXPECT_DOUBLE_EQ(series[x], (1 - kC) / 3.0);
  }
}

TEST(NeumannTest, SecondTermAddsOneHop) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  auto v = JumpVector::Uniform(2);
  auto series = NeumannSeries(g, v, kC, 2);
  EXPECT_DOUBLE_EQ(series[0], (1 - kC) / 2.0);
  EXPECT_DOUBLE_EQ(series[1], (1 - kC) / 2.0 + kC * (1 - kC) / 2.0);
}

TEST(NeumannTest, ConvergesMonotonicallyToSolverSolution) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(3, 2);
  b.AddEdge(4, 0);
  WebGraph g = b.Build();
  auto v = JumpVector::Uniform(5);
  pagerank::SolverOptions opt;
  opt.tolerance = 1e-15;
  opt.max_iterations = 5000;
  auto exact = pagerank::ComputePageRank(g, v, opt);
  ASSERT_TRUE(exact.ok());
  double prev_err = 1e9;
  for (int terms : {2, 5, 10, 30, 120, 200}) {
    auto series = NeumannSeries(g, v, kC, terms);
    double err = 0;
    for (NodeId x = 0; x < 5; ++x) {
      err += std::abs(series[x] - exact.value().scores[x]);
    }
    EXPECT_LT(err, prev_err + 1e-15) << "terms=" << terms;
    EXPECT_LE(err, NeumannTruncationBound(v, kC, terms) + 1e-12);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-12);  // c^200 ~ 8e-15 per unit of jump mass
}

TEST(NeumannTest, SeriesIsAlwaysBelowLimit) {
  // Every term is non-negative, so truncations underestimate.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(2, 1);
  WebGraph g = b.Build();
  auto v = JumpVector::Uniform(4);
  pagerank::SolverOptions opt;
  opt.tolerance = 1e-15;
  opt.max_iterations = 5000;
  auto exact = pagerank::ComputePageRank(g, v, opt);
  ASSERT_TRUE(exact.ok());
  auto series = NeumannSeries(g, v, kC, 10);
  for (NodeId x = 0; x < 4; ++x) {
    EXPECT_LE(series[x], exact.value().scores[x] + 1e-15);
  }
}

TEST(NeumannTest, TruncationBoundShrinksGeometrically) {
  auto v = JumpVector::Uniform(10);
  double b1 = NeumannTruncationBound(v, kC, 10);
  double b2 = NeumannTruncationBound(v, kC, 20);
  EXPECT_NEAR(b2 / b1, std::pow(kC, 10), 1e-12);
}

TEST(NeumannTest, SparseJumpStaysSparse) {
  // Contribution semantics: with v = v^x, nodes unreachable from x stay 0.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  WebGraph g = b.Build();
  auto vx = JumpVector::SingleNode(4, 0, 0.25);
  auto series = NeumannSeries(g, vx, kC, 50);
  EXPECT_GT(series[0], 0.0);
  EXPECT_GT(series[1], 0.0);
  EXPECT_EQ(series[2], 0.0);
  EXPECT_EQ(series[3], 0.0);
}

}  // namespace
}  // namespace spammass
