// Tests of the TrustRank baseline.

#include "core/trustrank.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "synth/paper_graphs.h"

namespace spammass {
namespace {

using core::ComputeTrustRank;
using core::RankByTrust;
using core::RunTrustRank;
using core::SelectSeedsByInversePageRank;
using core::TrustRankOptions;
using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::SolverOptions;

SolverOptions Precise() {
  SolverOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 5000;
  return opt;
}

TEST(TrustRankTest, TrustFlowsOnlyFromSeeds) {
  auto fig = synth::MakeFigure2Graph();
  auto trust = ComputeTrustRank(fig.graph, {fig.g1}, Precise());
  ASSERT_TRUE(trust.ok());
  // g1 -> g0 -> x is the only trust path.
  EXPECT_GT(trust.value()[fig.g1], 0.0);
  EXPECT_GT(trust.value()[fig.g0], 0.0);
  EXPECT_GT(trust.value()[fig.x], 0.0);
  EXPECT_EQ(trust.value()[fig.s0], 0.0);
  EXPECT_EQ(trust.value()[fig.g2], 0.0);
}

TEST(TrustRankTest, SpamFarmGetsNoTrust) {
  auto fig = synth::MakeFigure2Graph();
  auto trust = ComputeTrustRank(fig.graph, fig.good_core, Precise());
  ASSERT_TRUE(trust.ok());
  for (NodeId s : {fig.s0, fig.s1, fig.s5, fig.s6}) {
    EXPECT_EQ(trust.value()[s], 0.0);
  }
}

TEST(TrustRankTest, EmptySeedsRejected) {
  auto fig = synth::MakeFigure2Graph();
  EXPECT_FALSE(ComputeTrustRank(fig.graph, {}, Precise()).ok());
}

TEST(TrustRankTest, OutOfRangeSeedRejected) {
  auto fig = synth::MakeFigure2Graph();
  EXPECT_FALSE(ComputeTrustRank(fig.graph, {999}, Precise()).ok());
}

TEST(TrustRankTest, InversePageRankPrefersBroadReach) {
  // Star: node 0 links to everyone; on the transposed graph every node
  // links to 0, so 0 dominates inverse PageRank.
  GraphBuilder b(6);
  for (NodeId i = 1; i < 6; ++i) b.AddEdge(0, i);
  WebGraph g = b.Build();
  auto seeds = SelectSeedsByInversePageRank(g, 2, Precise());
  ASSERT_TRUE(seeds.ok());
  ASSERT_EQ(seeds.value().size(), 2u);
  EXPECT_EQ(seeds.value()[0], 0u);
}

TEST(TrustRankTest, SeedCountClampedToGraph) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  auto seeds = SelectSeedsByInversePageRank(g, 100, Precise());
  ASSERT_TRUE(seeds.ok());
  EXPECT_EQ(seeds.value().size(), 3u);
}

TEST(TrustRankTest, OracleFiltersSpamSeeds) {
  auto fig = synth::MakeFigure1Graph(30);
  TrustRankOptions options;
  options.solver = Precise();
  options.seed_candidates = 4;
  auto result = RunTrustRank(fig.graph, fig.labels, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (NodeId s : result.value().seeds) {
    EXPECT_TRUE(fig.labels.IsGood(s)) << "seed " << s;
  }
}

TEST(TrustRankTest, RankByTrustDescending) {
  auto order = RankByTrust({0.1, 0.5, 0.3});
  EXPECT_EQ(order, (std::vector<NodeId>{1, 2, 0}));
}

TEST(TrustRankTest, DemotionVsDetectionOnFigure2) {
  // TrustRank demotes the farm (low trust) but cannot *detect* it: good
  // nodes outside the trust flow (g2's subtree when only g1 seeds) look
  // identical to spam. Spam mass separates them (Section 5).
  auto fig = synth::MakeFigure2Graph();
  auto trust = ComputeTrustRank(fig.graph, {fig.g1}, Precise());
  ASSERT_TRUE(trust.ok());
  EXPECT_EQ(trust.value()[fig.s0], trust.value()[fig.g3]);  // both zero
}

}  // namespace
}  // namespace spammass
