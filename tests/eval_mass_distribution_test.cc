// Tests of the Figure 6 mass-distribution computation.

#include "eval/mass_distribution.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace spammass {
namespace {

using core::MassEstimates;
using eval::ComputeMassDistribution;
using eval::MassDistribution;

MassEstimates EstimatesFromScaledMasses(const std::vector<double>& scaled,
                                        double damping = 0.85) {
  MassEstimates est;
  est.damping = damping;
  size_t n = scaled.size();
  double unscale = (1.0 - damping) / static_cast<double>(n);
  for (double m : scaled) {
    est.absolute_mass.push_back(m * unscale);
    est.pagerank.push_back(std::abs(m) * unscale + unscale);
    est.core_pagerank.push_back(0);
    est.relative_mass.push_back(0);
  }
  return est;
}

TEST(MassDistributionTest, SplitsBranchesAndRange) {
  MassEstimates est =
      EstimatesFromScaledMasses({-100, -5, -0.1, 0, 2, 30, 400});
  MassDistribution dist = ComputeMassDistribution(est);
  EXPECT_EQ(dist.num_negative, 3u);
  EXPECT_EQ(dist.num_positive, 3u);
  EXPECT_NEAR(dist.min_scaled_mass, -100, 1e-9);
  EXPECT_NEAR(dist.max_scaled_mass, 400, 1e-9);
}

TEST(MassDistributionTest, BinFractionsReferTotalPerBranch) {
  MassEstimates est = EstimatesFromScaledMasses({1, 2, 4, 8, 16});
  MassDistribution dist = ComputeMassDistribution(est, 2.0, 1.0);
  uint64_t count = 0;
  for (const auto& b : dist.positive) count += b.count;
  EXPECT_EQ(count, 5u);
  EXPECT_TRUE(dist.negative.empty());
}

TEST(MassDistributionTest, PowerLawTailRecovered) {
  // Positive masses drawn from a power law with alpha = 2.31 — the paper's
  // measured exponent — must be recovered by the fit.
  util::Rng rng(5);
  std::vector<double> scaled;
  for (int i = 0; i < 60000; ++i) {
    scaled.push_back(rng.PowerLaw(1.0, 2.31));
  }
  for (int i = 0; i < 5000; ++i) scaled.push_back(-rng.PowerLaw(1.0, 2.5));
  MassEstimates est = EstimatesFromScaledMasses(scaled);
  MassDistribution dist = ComputeMassDistribution(est);
  EXPECT_EQ(dist.num_positive, 60000u);
  EXPECT_NEAR(dist.positive_fit.alpha, 2.31, 0.06);
}

TEST(MassDistributionTest, TooFewPositivesNoFit) {
  MassEstimates est = EstimatesFromScaledMasses({-1, -2, 3});
  MassDistribution dist = ComputeMassDistribution(est);
  EXPECT_EQ(dist.positive_fit.alpha, 0.0);
}

TEST(MassDistributionTest, LogBinsCoverWideRange) {
  MassEstimates est = EstimatesFromScaledMasses({1, 1e5});
  MassDistribution dist = ComputeMassDistribution(est, 10.0, 1.0);
  ASSERT_FALSE(dist.positive.empty());
  EXPECT_GE(dist.positive.back().upper, 1e5);
}

}  // namespace
}  // namespace spammass
