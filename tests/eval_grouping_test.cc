// Tests of the Table 2 / Figure 3 sample grouping.

#include "eval/grouping.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using core::NodeLabel;
using eval::EvaluationSample;
using eval::JudgedHost;
using eval::SampleGroup;
using eval::SplitIntoGroups;
using eval::ThresholdsFromGroups;

JudgedHost Host(double mass, NodeLabel judged,
                bool anomalous = false) {
  JudgedHost h;
  h.node = 0;
  h.relative_mass = mass;
  h.judged = judged;
  h.anomalous = anomalous;
  return h;
}

TEST(GroupingTest, GroupSizesNearEqualAndOrdered) {
  EvaluationSample sample;
  for (int i = 0; i < 892; ++i) {
    sample.hosts.push_back(
        Host(-68.0 + i * 0.077, i % 4 == 0 ? NodeLabel::kSpam
                                           : NodeLabel::kGood));
  }
  auto groups = SplitIntoGroups(sample, 20);
  ASSERT_EQ(groups.size(), 20u);
  uint64_t total = 0;
  double prev_max = -1e18;
  for (const auto& g : groups) {
    EXPECT_GE(g.size, 44u);  // 892 / 20 = 44.6
    EXPECT_LE(g.size, 45u);
    EXPECT_LE(g.smallest_mass, g.largest_mass);
    EXPECT_GE(g.smallest_mass, prev_max);
    prev_max = g.largest_mass;
    total += g.size;
  }
  EXPECT_EQ(total, 892u);
}

TEST(GroupingTest, CompositionCounts) {
  EvaluationSample sample;
  sample.hosts.push_back(Host(0.1, NodeLabel::kGood));
  sample.hosts.push_back(Host(0.2, NodeLabel::kSpam));
  sample.hosts.push_back(Host(0.3, NodeLabel::kGood, /*anomalous=*/true));
  sample.hosts.push_back(Host(0.4, NodeLabel::kUnknown));
  sample.hosts.push_back(Host(0.5, NodeLabel::kNonExistent));
  auto groups = SplitIntoGroups(sample, 1);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size, 5u);
  EXPECT_EQ(groups[0].good, 1u);
  EXPECT_EQ(groups[0].spam, 1u);
  EXPECT_EQ(groups[0].anomalous, 1u);
  EXPECT_EQ(groups[0].excluded, 2u);
  EXPECT_EQ(groups[0].EvaluatedSize(), 3u);
  EXPECT_NEAR(groups[0].SpamFraction(), 1.0 / 3, 1e-12);
}

TEST(GroupingTest, MoreGroupsThanHostsClamps) {
  EvaluationSample sample;
  sample.hosts.push_back(Host(0.1, NodeLabel::kGood));
  sample.hosts.push_back(Host(0.9, NodeLabel::kSpam));
  auto groups = SplitIntoGroups(sample, 20);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(GroupingTest, MassRangeBoundsAreTight) {
  EvaluationSample sample;
  for (double m : {0.9, 0.1, 0.5, 0.3, 0.7, 0.2}) {
    sample.hosts.push_back(Host(m, NodeLabel::kGood));
  }
  auto groups = SplitIntoGroups(sample, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_NEAR(groups[0].smallest_mass, 0.1, 1e-12);
  EXPECT_NEAR(groups[0].largest_mass, 0.3, 1e-12);
  EXPECT_NEAR(groups[1].smallest_mass, 0.5, 1e-12);
  EXPECT_NEAR(groups[1].largest_mass, 0.9, 1e-12);
}

TEST(GroupingTest, ThresholdsDescendFromNonNegativeBoundaries) {
  EvaluationSample sample;
  for (double m : {-2.0, -0.5, 0.1, 0.34, 0.56, 0.98}) {
    sample.hosts.push_back(Host(m, NodeLabel::kGood));
  }
  auto groups = SplitIntoGroups(sample, 6);
  auto thresholds = ThresholdsFromGroups(groups);
  // Non-negative group minima, descending, ending at 0.
  ASSERT_EQ(thresholds.size(), 5u);
  EXPECT_NEAR(thresholds[0], 0.98, 1e-12);
  EXPECT_NEAR(thresholds[1], 0.56, 1e-12);
  EXPECT_NEAR(thresholds[2], 0.34, 1e-12);
  EXPECT_NEAR(thresholds[3], 0.1, 1e-12);
  EXPECT_NEAR(thresholds[4], 0.0, 1e-12);
  EXPECT_TRUE(std::is_sorted(thresholds.rbegin(), thresholds.rend()));
}

}  // namespace
}  // namespace spammass
