// Tests of the Section 3.1 naive labeling schemes, including the exact
// failure cases the paper constructs them to expose.

#include "core/naive_schemes.h"

#include <gtest/gtest.h>

#include "synth/paper_graphs.h"

namespace spammass {
namespace {

using core::FirstLabelingScheme;
using core::FirstLabelingSchemeAll;
using core::LinkContributionMode;
using core::SecondLabelingScheme;
using core::SecondLabelingSchemeAll;
using pagerank::SolverOptions;

SolverOptions Precise() {
  SolverOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 5000;
  return opt;
}

// Figure 1 with k >= 2: the majority of x's inlinks are good (g0, g1 vs
// s0), so scheme 1 calls x good — the paper's documented failure.
TEST(NaiveSchemesTest, FirstSchemeFailsOnFigure1) {
  auto fig = synth::MakeFigure1Graph(10);
  EXPECT_FALSE(FirstLabelingScheme(fig.graph, fig.labels, fig.x));
  // It does catch s0, which has only spam inlinks.
  EXPECT_TRUE(FirstLabelingScheme(fig.graph, fig.labels, fig.s0));
}

// Scheme 2 weighs links by contribution: the s0→x link carries
// (c+kc²)(1−c)/n which beats the two good links' 2c(1−c)/n for k >= 2 —
// scheme 2 succeeds where scheme 1 failed (both modes).
TEST(NaiveSchemesTest, SecondSchemeSucceedsOnFigure1) {
  auto fig = synth::MakeFigure1Graph(10);
  for (auto mode :
       {LinkContributionMode::kExact, LinkContributionMode::kFirstOrder}) {
    auto r = SecondLabelingScheme(fig.graph, fig.labels, fig.x, Precise(),
                                  mode);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value()) << "mode " << static_cast<int>(mode);
  }
}

TEST(NaiveSchemesTest, SecondSchemeAgreesWithGoodVerdictOnSmallK) {
  // k = 1: the good links dominate; x is labeled good.
  auto fig = synth::MakeFigure1Graph(1);
  auto r = SecondLabelingScheme(fig.graph, fig.labels, fig.x, Precise(),
                                LinkContributionMode::kExact);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

// Figure 2: direct links to x are g0, g2 (contributing (2c+4c²)(1−c)/n)
// versus s0 ((c+4c²)(1−c)/n) — scheme 2 labels x good even though 7 spam
// nodes influence it indirectly. This is the failure motivating spam mass.
TEST(NaiveSchemesTest, SecondSchemeFailsOnFigure2) {
  auto fig = synth::MakeFigure2Graph();
  for (auto mode :
       {LinkContributionMode::kExact, LinkContributionMode::kFirstOrder}) {
    auto r = SecondLabelingScheme(fig.graph, fig.labels, fig.x, Precise(),
                                  mode);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value()) << "mode " << static_cast<int>(mode);
  }
}

TEST(NaiveSchemesTest, FirstSchemeAlsoFailsOnFigure2) {
  auto fig = synth::MakeFigure2Graph();
  EXPECT_FALSE(FirstLabelingScheme(fig.graph, fig.labels, fig.x));
}

TEST(NaiveSchemesTest, NoInlinksMeansGood) {
  auto fig = synth::MakeFigure1Graph(3);
  EXPECT_FALSE(FirstLabelingScheme(fig.graph, fig.labels, fig.g0));
  auto r = SecondLabelingScheme(fig.graph, fig.labels, fig.g0, Precise(),
                                LinkContributionMode::kFirstOrder);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

TEST(NaiveSchemesTest, UnknownNeighborsIgnored) {
  auto fig = synth::MakeFigure1Graph(4);
  // Mark the good in-neighbors unknown: only s0 remains judged, so the
  // majority of judged inlinks is spam.
  fig.labels.Set(fig.g0, core::NodeLabel::kUnknown);
  fig.labels.Set(fig.g1, core::NodeLabel::kNonExistent);
  EXPECT_TRUE(FirstLabelingScheme(fig.graph, fig.labels, fig.x));
}

TEST(NaiveSchemesTest, AllVariantsMatchSingleNodeCalls) {
  auto fig = synth::MakeFigure2Graph();
  auto all1 = FirstLabelingSchemeAll(fig.graph, fig.labels);
  for (graph::NodeId x = 0; x < fig.graph.num_nodes(); ++x) {
    EXPECT_EQ(all1[x], FirstLabelingScheme(fig.graph, fig.labels, x));
  }
  auto all2 = SecondLabelingSchemeAll(fig.graph, fig.labels, Precise());
  ASSERT_TRUE(all2.ok());
  for (graph::NodeId x = 0; x < fig.graph.num_nodes(); ++x) {
    auto single = SecondLabelingScheme(fig.graph, fig.labels, x, Precise(),
                                       LinkContributionMode::kFirstOrder);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(all2.value()[x], single.value()) << "node " << x;
  }
}

TEST(NaiveSchemesTest, OutOfRangeNodeRejected) {
  auto fig = synth::MakeFigure1Graph(1);
  EXPECT_FALSE(SecondLabelingScheme(fig.graph, fig.labels, 999, Precise(),
                                    LinkContributionMode::kFirstOrder)
                   .ok());
}

}  // namespace
}  // namespace spammass
