// Tests of induced-subgraph extraction.

#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::InducedSubgraph;
using graph::kInvalidNode;
using graph::NodeId;
using graph::Subgraph;
using graph::WebGraph;

TEST(SubgraphTest, KeepsOnlySelectedNodesAndInternalEdges) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  WebGraph g = b.Build();
  std::vector<bool> keep = {true, true, false, true, true};
  Subgraph sub = InducedSubgraph(g, keep);
  EXPECT_EQ(sub.graph.num_nodes(), 4u);
  // Only 0->1 and 3->4 survive (edges through node 2 are cut).
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_TRUE(sub.graph.HasEdge(sub.to_sub[0], sub.to_sub[1]));
  EXPECT_TRUE(sub.graph.HasEdge(sub.to_sub[3], sub.to_sub[4]));
}

TEST(SubgraphTest, MappingsAreConsistent) {
  GraphBuilder b(4);
  b.AddEdge(0, 3);
  WebGraph g = b.Build();
  std::vector<bool> keep = {true, false, false, true};
  Subgraph sub = InducedSubgraph(g, keep);
  ASSERT_EQ(sub.to_original.size(), 2u);
  EXPECT_EQ(sub.to_original[sub.to_sub[0]], 0u);
  EXPECT_EQ(sub.to_original[sub.to_sub[3]], 3u);
  EXPECT_EQ(sub.to_sub[1], kInvalidNode);
  EXPECT_EQ(sub.to_sub[2], kInvalidNode);
}

TEST(SubgraphTest, CarriesHostNames) {
  GraphBuilder b;
  b.AddNode("a.example.com");
  b.AddNode("b.example.com");
  b.AddNode("c.example.com");
  b.AddEdge(0, 2);
  WebGraph g = b.Build();
  std::vector<bool> keep = {true, false, true};
  Subgraph sub = InducedSubgraph(g, keep);
  EXPECT_EQ(sub.graph.HostName(sub.to_sub[0]), "a.example.com");
  EXPECT_EQ(sub.graph.HostName(sub.to_sub[2]), "c.example.com");
}

TEST(SubgraphTest, KeepNothing) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  Subgraph sub = InducedSubgraph(g, {false, false, false});
  EXPECT_EQ(sub.graph.num_nodes(), 0u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

TEST(SubgraphTest, KeepEverythingIsIdentity) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(2, 1);
  WebGraph g = b.Build();
  Subgraph sub = InducedSubgraph(g, {true, true, true});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  for (NodeId x = 0; x < 3; ++x) EXPECT_EQ(sub.to_sub[x], x);
}

}  // namespace
}  // namespace spammass
