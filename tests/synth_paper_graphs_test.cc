// Validates the solvers and mass estimators against the paper's worked
// examples: the closed-form PageRank of Figure 1 (Section 3.1) and the full
// Table 1 of features for the Figure 2 graph. These are the strongest
// correctness anchors in the repository — every value is derived
// analytically in the paper.

#include "synth/paper_graphs.h"

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/spam_mass.h"
#include "pagerank/contribution.h"
#include "pagerank/solver.h"

namespace spammass {
namespace {

using pagerank::ComputeUniformPageRank;
using pagerank::ScaledScores;
using pagerank::SolverOptions;
using synth::Figure1Graph;
using synth::Figure2Graph;
using synth::MakeFigure1Graph;
using synth::MakeFigure2Graph;

constexpr double kC = 0.85;
constexpr double kTol = 1e-9;

SolverOptions PreciseOptions() {
  SolverOptions opt;
  opt.damping = kC;
  opt.tolerance = 1e-15;
  opt.max_iterations = 2000;
  return opt;
}

// Section 3.1: p_x = (1 + 3c + kc²)(1−c)/n on the Figure 1 graph, of which
// (c + kc²)(1−c)/n is due to spamming.
class Figure1PageRankTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Figure1PageRankTest, MatchesClosedForm) {
  const uint32_t k = GetParam();
  Figure1Graph fig = MakeFigure1Graph(k);
  const double n = fig.graph.num_nodes();
  ASSERT_EQ(n, k + 4.0);

  auto result = ComputeUniformPageRank(fig.graph, PreciseOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& p = result.value().scores;

  double expected_x = (1.0 + 3.0 * kC + k * kC * kC) * (1.0 - kC) / n;
  EXPECT_NEAR(p[fig.x], expected_x, kTol);

  // The spam-attributable part: contribution of {s0, ..., sk} to x.
  auto spam_contrib = pagerank::ComputeSetContribution(
      fig.graph, fig.labels.SpamNodes(), PreciseOptions());
  ASSERT_TRUE(spam_contrib.ok());
  double expected_spam_part = (kC + k * kC * kC) * (1.0 - kC) / n;
  // x itself is spam-labeled; subtract its self-contribution (1−c)/n to
  // isolate the boosting by s0..sk that the formula describes.
  EXPECT_NEAR(spam_contrib.value().scores[fig.x] - (1.0 - kC) / n,
              expected_spam_part, kTol);
}

INSTANTIATE_TEST_SUITE_P(VaryBoosters, Figure1PageRankTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 10u, 50u));

// For c = 0.85, the paper argues x is mostly spam-supported as soon as
// k >= ceil(1/c) = 2.
TEST(Figure1PageRankTest, SpamDominatesFromKEqualTwo) {
  for (uint32_t k : {0u, 1u, 2u, 3u, 10u}) {
    Figure1Graph fig = MakeFigure1Graph(k);
    auto pr = ComputeUniformPageRank(fig.graph, PreciseOptions());
    ASSERT_TRUE(pr.ok());
    double n = fig.graph.num_nodes();
    double good_part = 2.0 * kC * (1.0 - kC) / n;       // links from g0, g1
    double spam_part = (kC + k * kC * kC) * (1.0 - kC) / n;  // link from s0
    if (k >= 2) {
      EXPECT_GT(spam_part, good_part) << "k=" << k;
    } else {
      EXPECT_LT(spam_part, good_part) << "k=" << k;
    }
  }
}

// Table 1, column by column. Scaled by n/(1−c); the paper rounds to two
// decimals (and prints 9.33 for x's PageRank).
TEST(Figure2Table1Test, ScaledPageRank) {
  Figure2Graph fig = MakeFigure2Graph();
  ASSERT_EQ(fig.graph.num_nodes(), 12u);
  auto pr = ComputeUniformPageRank(fig.graph, PreciseOptions());
  ASSERT_TRUE(pr.ok());
  auto p = ScaledScores(pr.value().scores, kC);

  // Exact values: p̂_x = 1 + 2c(1+2c) + c(1+4c) = 9.33 for c = 0.85.
  EXPECT_NEAR(p[fig.x], 9.33, 1e-9);
  EXPECT_NEAR(p[fig.g0], 2.7, 1e-9);
  EXPECT_NEAR(p[fig.g1], 1.0, 1e-9);
  EXPECT_NEAR(p[fig.g2], 2.7, 1e-9);
  EXPECT_NEAR(p[fig.g3], 1.0, 1e-9);
  EXPECT_NEAR(p[fig.s0], 4.4, 1e-9);
  for (auto s : {fig.s1, fig.s2, fig.s3, fig.s4, fig.s5, fig.s6}) {
    EXPECT_NEAR(p[s], 1.0, 1e-9);
  }
}

TEST(Figure2Table1Test, CoreBasedPageRank) {
  Figure2Graph fig = MakeFigure2Graph();
  // The worked example uses w = v^Ṽ⁺ (no γ scaling).
  core::SpamMassOptions options;
  options.solver = PreciseOptions();
  options.scale_core_jump = false;
  auto est = core::EstimateSpamMass(fig.graph, fig.good_core, options);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  auto p0 = ScaledScores(est.value().core_pagerank, kC);

  EXPECT_NEAR(p0[fig.x], 2.295, 1e-9);   // c·(1.85 + 0.85)
  EXPECT_NEAR(p0[fig.g0], 1.85, 1e-9);   // 1 + c·1
  EXPECT_NEAR(p0[fig.g1], 1.0, 1e-9);
  EXPECT_NEAR(p0[fig.g2], 0.85, 1e-9);   // c·1 (g3 in core, g2 not)
  EXPECT_NEAR(p0[fig.g3], 1.0, 1e-9);
  EXPECT_NEAR(p0[fig.s0], 0.0, 1e-9);
  for (auto s : {fig.s1, fig.s2, fig.s3, fig.s4, fig.s5, fig.s6}) {
    EXPECT_NEAR(p0[s], 0.0, 1e-9);
  }
}

TEST(Figure2Table1Test, ActualAbsoluteAndRelativeMass) {
  Figure2Graph fig = MakeFigure2Graph();
  auto actual =
      core::ComputeActualSpamMass(fig.graph, fig.labels, PreciseOptions());
  ASSERT_TRUE(actual.ok());
  auto m_abs = ScaledScores(actual.value().absolute_mass, kC);
  const auto& m_rel = actual.value().relative_mass;

  EXPECT_NEAR(m_abs[fig.x], 6.185, 1e-9);  // 1 + c + 6c² (self + s0 + 6 walks)
  EXPECT_NEAR(m_abs[fig.g0], 0.85, 1e-9);
  EXPECT_NEAR(m_abs[fig.g1], 0.0, 1e-9);
  EXPECT_NEAR(m_abs[fig.g2], 0.85, 1e-9);
  EXPECT_NEAR(m_abs[fig.g3], 0.0, 1e-9);
  EXPECT_NEAR(m_abs[fig.s0], 4.4, 1e-9);
  for (auto s : {fig.s1, fig.s2, fig.s3, fig.s4, fig.s5, fig.s6}) {
    EXPECT_NEAR(m_abs[s], 1.0, 1e-9);
  }

  // Relative mass (Table 1): 0.66, 0.31, 0, 0.31, 0, 1, 1.
  EXPECT_NEAR(m_rel[fig.x], 6.185 / 9.33, 1e-9);
  EXPECT_NEAR(m_rel[fig.g0], 0.85 / 2.7, 1e-9);
  EXPECT_NEAR(m_rel[fig.g1], 0.0, 1e-9);
  EXPECT_NEAR(m_rel[fig.g2], 0.85 / 2.7, 1e-9);
  EXPECT_NEAR(m_rel[fig.s0], 1.0, 1e-9);
  EXPECT_NEAR(m_rel[fig.s1], 1.0, 1e-9);
}

TEST(Figure2Table1Test, EstimatedAbsoluteAndRelativeMass) {
  Figure2Graph fig = MakeFigure2Graph();
  core::SpamMassOptions options;
  options.solver = PreciseOptions();
  options.scale_core_jump = false;
  auto est = core::EstimateSpamMass(fig.graph, fig.good_core, options);
  ASSERT_TRUE(est.ok());
  auto m_abs = ScaledScores(est.value().absolute_mass, kC);
  const auto& m_rel = est.value().relative_mass;

  EXPECT_NEAR(m_abs[fig.x], 9.33 - 2.295, 1e-9);  // 7.035
  EXPECT_NEAR(m_abs[fig.g0], 0.85, 1e-9);
  EXPECT_NEAR(m_abs[fig.g1], 0.0, 1e-9);
  EXPECT_NEAR(m_abs[fig.g2], 1.85, 1e-9);
  EXPECT_NEAR(m_abs[fig.g3], 0.0, 1e-9);
  EXPECT_NEAR(m_abs[fig.s0], 4.4, 1e-9);

  EXPECT_NEAR(m_rel[fig.x], (9.33 - 2.295) / 9.33, 1e-9);  // 0.75
  EXPECT_NEAR(m_rel[fig.g0], 0.85 / 2.7, 1e-9);                // 0.31
  EXPECT_NEAR(m_rel[fig.g2], 1.85 / 2.7, 1e-9);                // 0.69
  EXPECT_NEAR(m_rel[fig.s0], 1.0, 1e-9);
  EXPECT_NEAR(m_rel[fig.s5], 1.0, 1e-9);
}

// Section 3.3's worked contributions: q_x^{good} = (2c+2c²)(1−c)/n and
// q_x^{spam minus x} = (c+6c²)(1−c)/n, a ratio of 1.65 at c = 0.85.
TEST(Figure2Table1Test, SpamToGoodContributionRatio) {
  Figure2Graph fig = MakeFigure2Graph();
  auto good = pagerank::ComputeSetContribution(
      fig.graph, {fig.g0, fig.g1, fig.g2, fig.g3}, PreciseOptions());
  auto spam = pagerank::ComputeSetContribution(
      fig.graph, {fig.s0, fig.s1, fig.s2, fig.s3, fig.s4, fig.s5, fig.s6},
      PreciseOptions());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(spam.ok());
  const double n = 12.0;
  EXPECT_NEAR(good.value().scores[fig.x],
              (2 * kC + 2 * kC * kC) * (1 - kC) / n, kTol);
  EXPECT_NEAR(spam.value().scores[fig.x],
              (kC + 6 * kC * kC) * (1 - kC) / n, kTol);
  EXPECT_NEAR(
      spam.value().scores[fig.x] / good.value().scores[fig.x], 1.65, 0.005);
}

// Section 3.6 walks Algorithm 2 over the example: with ρ = 1.5 and τ = 0.5,
// the spam candidates are exactly {x, s0, g2} — g2 being the documented
// false positive caused by core incompleteness.
TEST(Figure2Table1Test, Algorithm2WorkedExample) {
  Figure2Graph fig = MakeFigure2Graph();
  core::SpamMassOptions options;
  options.solver = PreciseOptions();
  options.scale_core_jump = false;
  auto est = core::EstimateSpamMass(fig.graph, fig.good_core, options);
  ASSERT_TRUE(est.ok());

  core::DetectorConfig config;
  config.scaled_pagerank_threshold = 1.5;
  config.relative_mass_threshold = 0.5;
  auto candidates = core::DetectSpamCandidates(est.value(), config);
  std::vector<graph::NodeId> nodes;
  for (const auto& c : candidates) nodes.push_back(c.node);
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<graph::NodeId>{fig.x, fig.g2, fig.s0}));
}

}  // namespace
}  // namespace spammass
