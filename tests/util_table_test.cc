// Tests of the text-table / CSV renderer.

#include "util/table.h"

#include <gtest/gtest.h>

#include <fstream>

namespace spammass {
namespace {

using util::FormatDouble;
using util::TextTable;

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(2.7), "2.7");
  EXPECT_EQ(FormatDouble(2.7000001, 2), "2.7");
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(-0.0), "0");
  EXPECT_EQ(FormatDouble(-67.9, 2), "-67.9");
  EXPECT_EQ(FormatDouble(0.1234567, 4), "0.1235");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"node", "pagerank"});
  t.AddRowValues("x", 9.33);
  t.AddRowValues("g0", 2.7);
  std::string s = t.ToString();
  EXPECT_NE(s.find("node"), std::string::npos);
  EXPECT_NE(s.find("9.33"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Every line has the same column start for "pagerank" values.
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, PadsShortRows) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(TextTableTest, CsvQuoting) {
  TextTable t;
  t.SetHeader({"name", "note"});
  t.AddRow({"a,b", "say \"hi\""});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTableTest, CsvWriteToFile) {
  TextTable t;
  t.SetHeader({"x"});
  t.AddRowValues(42);
  std::string path = testing::TempDir() + "/table.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x");
  std::getline(f, line);
  EXPECT_EQ(line, "42");
}

TEST(TextTableTest, MixedCellTypes) {
  TextTable t;
  t.SetHeader({"id", "mass", "label"});
  t.AddRowValues(7, -67.9, std::string("good"));
  std::string s = t.ToString();
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("-67.9"), std::string::npos);
  EXPECT_NE(s.find("good"), std::string::npos);
}

}  // namespace
}  // namespace spammass
