// Tests of Status / Result error handling.

#include "util/status.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using util::Result;
using util::Status;
using util::StatusCode;

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad gamma");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad gamma");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad gamma");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrPassesThroughValue) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailingStep() { return Status::IoError("disk on fire"); }

Status UsesReturnNotOk() {
  SPAMMASS_RETURN_NOT_OK(FailingStep());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = UsesReturnNotOk();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace spammass
