// Unit tests of the linear PageRank solvers on small graphs with known
// solutions.

#include "pagerank/solver.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "pagerank/jump_vector.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::ComputePageRank;
using pagerank::ComputeUniformPageRank;
using pagerank::DanglingPolicy;
using pagerank::JumpVector;
using pagerank::L1Norm;
using pagerank::Method;
using pagerank::ScaledScores;
using pagerank::SolverOptions;

SolverOptions Precise(Method method = Method::kJacobi) {
  SolverOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 5000;
  opt.method = method;
  return opt;
}

WebGraph Chain3() {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  return b.Build();
}

TEST(SolverTest, EmptyGraphRejected) {
  WebGraph g;
  auto r = ComputeUniformPageRank(g, Precise());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(SolverTest, BadDampingRejected) {
  WebGraph g = Chain3();
  SolverOptions opt = Precise();
  opt.damping = 1.0;
  EXPECT_FALSE(ComputeUniformPageRank(g, opt).ok());
  opt.damping = 0.0;
  EXPECT_FALSE(ComputeUniformPageRank(g, opt).ok());
  opt.damping = -0.3;
  EXPECT_FALSE(ComputeUniformPageRank(g, opt).ok());
}

TEST(SolverTest, DimensionMismatchRejected) {
  WebGraph g = Chain3();
  auto r = ComputePageRank(g, JumpVector::Uniform(5), Precise());
  EXPECT_FALSE(r.ok());
}

TEST(SolverTest, ZeroJumpVectorRejected) {
  WebGraph g = Chain3();
  auto r = ComputePageRank(g, JumpVector(3), Precise());
  EXPECT_FALSE(r.ok());
}

TEST(SolverTest, OverUnitNormRejected) {
  WebGraph g = Chain3();
  auto r = ComputePageRank(
      g, JumpVector::FromDense({0.9, 0.9, 0.9}), Precise());
  EXPECT_FALSE(r.ok());
}

TEST(SolverTest, SingleNodeNoEdges) {
  GraphBuilder b(1);
  WebGraph g = b.Build();
  auto r = ComputeUniformPageRank(g, Precise());
  ASSERT_TRUE(r.ok());
  // No inlinks: p = (1−c)·v; scaled score is exactly 1.
  EXPECT_NEAR(ScaledScores(r.value().scores, 0.85)[0], 1.0, 1e-12);
}

TEST(SolverTest, ChainScores) {
  // 0 -> 1 -> 2 with leak policy: p̂0 = 1, p̂1 = 1+c, p̂2 = 1+c(1+c).
  WebGraph g = Chain3();
  auto r = ComputeUniformPageRank(g, Precise());
  ASSERT_TRUE(r.ok());
  auto p = ScaledScores(r.value().scores, 0.85);
  EXPECT_NEAR(p[0], 1.0, 1e-10);
  EXPECT_NEAR(p[1], 1.85, 1e-10);
  EXPECT_NEAR(p[2], 1.0 + 0.85 * 1.85, 1e-10);
}

TEST(SolverTest, ConvergenceReported) {
  WebGraph g = Chain3();
  auto r = ComputeUniformPageRank(g, Precise());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().converged);
  EXPECT_LT(r.value().residual, 1e-14);
  EXPECT_GT(r.value().iterations, 0);
}

TEST(SolverTest, IterationCapStopsUnconverged) {
  WebGraph g = Chain3();
  SolverOptions opt = Precise();
  opt.max_iterations = 1;
  opt.tolerance = 1e-300;
  auto r = ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().converged);
  EXPECT_EQ(r.value().iterations, 1);
}

TEST(SolverTest, ResidualHistoryTracked) {
  WebGraph g = Chain3();
  SolverOptions opt = Precise();
  opt.track_residuals = true;
  auto r = ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<int>(r.value().residual_history.size()),
            r.value().iterations);
  // Residuals of a converging solve shrink overall.
  EXPECT_LT(r.value().residual_history.back(),
            r.value().residual_history.front());
}

TEST(SolverTest, LeakPolicyNormBelowJumpNorm) {
  // With dangling leak, ‖p‖ ≤ ‖v‖ (Section 3.5 uses this inequality).
  WebGraph g = Chain3();  // node 2 dangles
  auto r = ComputeUniformPageRank(g, Precise());
  ASSERT_TRUE(r.ok());
  EXPECT_LT(L1Norm(r.value().scores), 1.0);
}

TEST(SolverTest, RedistributePolicyHasUnitNorm) {
  WebGraph g = Chain3();
  SolverOptions opt = Precise();
  opt.dangling = DanglingPolicy::kRedistributeToJump;
  auto r = ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(L1Norm(r.value().scores), 1.0, 1e-10);
}

TEST(SolverTest, GaussSeidelMatchesJacobi) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  b.AddEdge(4, 2);
  b.AddEdge(5, 0);
  WebGraph g = b.Build();
  auto jacobi = ComputeUniformPageRank(g, Precise(Method::kJacobi));
  auto gs = ComputeUniformPageRank(g, Precise(Method::kGaussSeidel));
  ASSERT_TRUE(jacobi.ok());
  ASSERT_TRUE(gs.ok());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_NEAR(jacobi.value().scores[x], gs.value().scores[x], 1e-10);
  }
}

TEST(SolverTest, GaussSeidelMatchesJacobiWithRedistribution) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);   // 2 dangles
  b.AddEdge(3, 2);
  b.AddEdge(4, 0);   // 4 has out, none in
  WebGraph g = b.Build();
  SolverOptions jopt = Precise(Method::kJacobi);
  SolverOptions gopt = Precise(Method::kGaussSeidel);
  jopt.dangling = gopt.dangling = DanglingPolicy::kRedistributeToJump;
  auto jacobi = ComputeUniformPageRank(g, jopt);
  auto gs = ComputeUniformPageRank(g, gopt);
  ASSERT_TRUE(jacobi.ok());
  ASSERT_TRUE(gs.ok());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_NEAR(jacobi.value().scores[x], gs.value().scores[x], 1e-10);
  }
}

TEST(SolverTest, PowerIterationMatchesNormalizedLinearSolution) {
  // The stationary distribution of T'' equals the (unit-norm) solution of
  // the linear system with the redistribute policy.
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 0);
  b.AddEdge(4, 1);  // 4 never receives links; 3->0 closes a cycle
  WebGraph g = b.Build();
  SolverOptions lin = Precise(Method::kJacobi);
  lin.dangling = DanglingPolicy::kRedistributeToJump;
  auto linear = ComputeUniformPageRank(g, lin);
  auto power = ComputeUniformPageRank(g, Precise(Method::kPowerIteration));
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(power.ok());
  double norm = L1Norm(linear.value().scores);
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_NEAR(linear.value().scores[x] / norm, power.value().scores[x],
                1e-9);
  }
}

TEST(SolverTest, GaussSeidelConvergesInFewerSweepsThanJacobi) {
  // The motivation for linear PageRank (Section 2.2): Gauss-Seidel-style
  // solvers beat the plain fixed-point iteration.
  // Irregular graph (a regular one makes the uniform vector an instant
  // fixed point for both methods).
  GraphBuilder b(50);
  for (NodeId i = 0; i < 50; ++i) {
    b.AddEdge(i, (i + 1) % 50);
    if (i % 2 == 0) b.AddEdge(i, (i + 7) % 50);
    if (i % 5 == 0) b.AddEdge(i, (i * 3 + 11) % 50);
  }
  WebGraph g = b.Build();
  SolverOptions opt = Precise(Method::kJacobi);
  opt.tolerance = 1e-12;
  auto jacobi = ComputeUniformPageRank(g, opt);
  opt.method = Method::kGaussSeidel;
  auto gs = ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(jacobi.ok());
  ASSERT_TRUE(gs.ok());
  EXPECT_LT(gs.value().iterations, jacobi.value().iterations);
}

TEST(SolverTest, ScaledScoresInverseOfScaling) {
  std::vector<double> p = {0.1, 0.2};
  auto scaled = ScaledScores(p, 0.85);
  EXPECT_NEAR(scaled[0], 0.1 * 2 / 0.15, 1e-12);
  EXPECT_NEAR(scaled[1], 0.2 * 2 / 0.15, 1e-12);
}

}  // namespace
}  // namespace spammass
