// Tests of the MLE power-law fit used for the Figure 6 exponent.

#include "util/power_law.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace spammass {
namespace {

using util::FitPowerLaw;
using util::FitPowerLawAutoXmin;
using util::Rng;

std::vector<double> PowerLawSample(double alpha, double xmin, size_t n,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(rng.PowerLaw(xmin, alpha));
  return out;
}

class PowerLawFitTest : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawFitTest, RecoversExponent) {
  const double alpha = GetParam();
  auto sample = PowerLawSample(alpha, 1.0, 50000, 99);
  auto fit = FitPowerLaw(sample, 1.0);
  EXPECT_EQ(fit.tail_size, sample.size());
  EXPECT_NEAR(fit.alpha, alpha, 0.05);
  EXPECT_LT(fit.ks_distance, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Exponents, PowerLawFitTest,
                         ::testing::Values(1.8, 2.31, 2.8, 3.5));

TEST(PowerLawFitTest, IgnoresSubXminValues) {
  auto sample = PowerLawSample(2.5, 1.0, 20000, 7);
  sample.push_back(0.001);
  sample.push_back(-4.0);
  auto fit = FitPowerLaw(sample, 1.0);
  EXPECT_EQ(fit.tail_size, 20000u);
  EXPECT_NEAR(fit.alpha, 2.5, 0.06);
}

TEST(PowerLawFitTest, TooFewPointsYieldsZeroAlpha) {
  auto fit = FitPowerLaw({5.0}, 1.0);
  EXPECT_EQ(fit.alpha, 0.0);
  EXPECT_EQ(fit.tail_size, 1u);
}

TEST(PowerLawFitTest, AutoXminFindsCutoff) {
  // Sample that is power-law only above x = 10 (uniform noise below).
  Rng rng(13);
  std::vector<double> sample;
  for (int i = 0; i < 5000; ++i) sample.push_back(rng.Uniform01() * 10.0);
  auto tail = PowerLawSample(2.2, 10.0, 20000, 17);
  sample.insert(sample.end(), tail.begin(), tail.end());
  auto fit = FitPowerLawAutoXmin(sample);
  EXPECT_GT(fit.xmin, 3.0);
  EXPECT_NEAR(fit.alpha, 2.2, 0.15);
}

TEST(PowerLawFitTest, AutoXminEmptyAndDegenerate) {
  EXPECT_EQ(FitPowerLawAutoXmin({}).tail_size, 0u);
  EXPECT_EQ(FitPowerLawAutoXmin({-1.0, -2.0}).tail_size, 0u);
}

}  // namespace
}  // namespace spammass
