// End-to-end pipeline integration test on a small synthetic web.

#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "core/good_core.h"
#include "eval/grouping.h"
#include "eval/precision.h"
#include "util/logging.h"

namespace spammass {
namespace {

using eval::PipelineOptions;
using eval::PipelineResult;
using eval::RunPipeline;

class PipelineTest : public ::testing::Test {
 protected:
  static const PipelineResult& Result() {
    static PipelineResult* result = [] {
      PipelineOptions options;
      options.scale = 0.05;
      options.seed = 21;
      options.sample_size = 400;
      auto r = RunPipeline(options);
      CHECK_OK(r.status());
      return new PipelineResult(std::move(r.value()));
    }();
    return *result;
  }
};

TEST_F(PipelineTest, ProducesConsistentArtifacts) {
  const PipelineResult& r = Result();
  EXPECT_GT(r.web.graph.num_nodes(), 5000u);
  EXPECT_FALSE(r.good_core.empty());
  EXPECT_EQ(r.estimates.pagerank.size(),
            static_cast<size_t>(r.web.graph.num_nodes()));
  EXPECT_FALSE(r.filtered.empty());
  EXPECT_FALSE(r.sample.hosts.empty());
  EXPECT_GT(r.gamma_used, 0.3);
  EXPECT_LE(r.gamma_used, 1.0);
}

TEST_F(PipelineTest, GammaTracksGroundTruth) {
  const PipelineResult& r = Result();
  EXPECT_NEAR(r.gamma_used, r.web.labels.GoodFraction(), 0.05);
}

TEST_F(PipelineTest, FilteredSetRespectsRho) {
  const PipelineResult& r = Result();
  const double scale = static_cast<double>(r.estimates.pagerank.size()) /
                       (1.0 - r.estimates.damping);
  for (graph::NodeId x : r.filtered) {
    EXPECT_GE(r.estimates.pagerank[x] * scale, 10.0);
  }
}

TEST_F(PipelineTest, SpamTargetsHaveHigherMeanRelativeMassThanGood) {
  const PipelineResult& r = Result();
  double spam_sum = 0, good_sum = 0;
  uint64_t spam_n = 0, good_n = 0;
  for (graph::NodeId x : r.filtered) {
    if (r.web.labels.IsSpam(x)) {
      spam_sum += r.estimates.relative_mass[x];
      ++spam_n;
    } else {
      good_sum += r.estimates.relative_mass[x];
      ++good_n;
    }
  }
  ASSERT_GT(spam_n, 0u);
  ASSERT_GT(good_n, 0u);
  EXPECT_GT(spam_sum / spam_n, good_sum / good_n + 0.2);
}

TEST_F(PipelineTest, GroupingAndPrecisionCompose) {
  const PipelineResult& r = Result();
  auto groups = eval::SplitIntoGroups(r.sample, 20);
  EXPECT_EQ(groups.size(), 20u);
  auto thresholds = eval::ThresholdsFromGroups(groups);
  auto curve = eval::ComputePrecisionCurve(r.sample, thresholds,
                                           &r.estimates, 10.0);
  ASSERT_EQ(curve.size(), thresholds.size());
  // Concentrating on the highest relative mass concentrates spam: the
  // top-threshold precision is high and not materially worse than the
  // bottom-threshold one (the strict decline is asserted at larger scale
  // in integration_detection_quality_test.cc; at this tiny scale the two
  // are within sampling noise of each other).
  EXPECT_GT(curve.front().precision_excluding_anomalous, 0.8);
  EXPECT_GT(curve.front().precision_excluding_anomalous,
            curve.back().precision_excluding_anomalous - 0.08);
  // Counts along the curve grow as the threshold drops.
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].hosts_above, curve[i - 1].hosts_above);
  }
}

TEST_F(PipelineTest, ReestimateWithSmallerCoreRuns) {
  const PipelineResult& r = Result();
  util::Rng rng(1);
  auto small_core = core::SubsampleCore(r.good_core, 0.1, &rng);
  PipelineOptions options;
  options.scale = 0.05;
  options.seed = 21;
  auto reestimate = eval::ReestimateWithCore(r, small_core, options);
  ASSERT_TRUE(reestimate.ok()) << reestimate.status().ToString();
  const eval::EvaluationSample& sample = reestimate.value().sample;
  EXPECT_EQ(sample.hosts.size(), r.sample.hosts.size());
  // Same hosts, different masses (core shrank 10x).
  bool any_difference = false;
  for (size_t i = 0; i < sample.hosts.size(); ++i) {
    if (std::abs(sample.hosts[i].relative_mass -
                 r.sample.hosts[i].relative_mass) > 1e-6) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  PipelineOptions options;
  options.scale = 0.02;
  options.seed = 33;
  options.sample_size = 50;
  auto a = RunPipeline(options);
  auto b = RunPipeline(options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().sample.hosts.size(), b.value().sample.hosts.size());
  for (size_t i = 0; i < a.value().sample.hosts.size(); ++i) {
    EXPECT_EQ(a.value().sample.hosts[i].node, b.value().sample.hosts[i].node);
    EXPECT_EQ(a.value().sample.hosts[i].relative_mass,
              b.value().sample.hosts[i].relative_mass);
  }
}

}  // namespace
}  // namespace spammass
