// Tests of GraphBuilder normalization: self-loop removal and duplicate
// collapsing (Sections 2.1 and 4.1 of the paper).

#include "graph/graph_builder.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

TEST(GraphBuilderTest, SelfLoopsDropped) {
  GraphBuilder b(3);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  WebGraph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(GraphBuilderTest, DuplicateEdgesCollapse) {
  // "We collapsed all hyperlinks between any pair of pages on two hosts
  // into a single directed edge" (Section 4.1).
  GraphBuilder b(2);
  for (int i = 0; i < 10; ++i) b.AddEdge(0, 1);
  WebGraph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, EnsureNodesExtends) {
  GraphBuilder b;
  b.EnsureNodes(5);
  EXPECT_EQ(b.num_nodes(), 5u);
  b.EnsureNodes(3);  // Never shrinks.
  EXPECT_EQ(b.num_nodes(), 5u);
  WebGraph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilderTest, AddNodeReturnsSequentialIds) {
  GraphBuilder b;
  EXPECT_EQ(b.AddNode(), 0u);
  EXPECT_EQ(b.AddNode(), 1u);
  EXPECT_EQ(b.AddNode("named.example.com"), 2u);
  WebGraph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.HostName(2), "named.example.com");
  // Unnamed nodes created before the first named one get empty names.
  EXPECT_EQ(g.HostName(0), "");
}

TEST(GraphBuilderTest, BuildResetsBuilder) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g1 = b.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(b.num_nodes(), 0u);
  EXPECT_EQ(b.num_pending_edges(), 0u);
}

TEST(GraphBuilderTest, MixedNamedAndUnnamed) {
  GraphBuilder b;
  b.AddNode();
  b.AddNode("host.example.net");
  b.AddNode();
  WebGraph g = b.Build();
  EXPECT_EQ(g.HostName(1), "host.example.net");
  EXPECT_EQ(g.HostName(2), "");
}

TEST(GraphBuilderDeathTest, EdgeToUnknownNodeAborts) {
  GraphBuilder b(2);
  EXPECT_DEATH(b.AddEdge(0, 2), "Check failed");
}

}  // namespace
}  // namespace spammass
