// Tests of the degree-outlier baseline: it must catch uniform
// machine-generated farms and miss "organic-looking" spam — the contrast
// the paper draws in Section 5.

#include "core/degree_outlier.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "util/random.h"

namespace spammass {
namespace {

using core::DegreeOutlierConfig;
using core::DetectDegreeOutliers;
using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

/// Background web whose indegrees decay smoothly (roughly power law), plus
/// `farm_pages` spam pages that all share the exact same indegree
/// `farm_degree`.
WebGraph GraphWithDegreeSpike(uint32_t farm_pages, uint32_t farm_degree,
                              uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b;
  const uint32_t n_background = 3000;
  for (uint32_t i = 0; i < n_background; ++i) b.AddNode();
  // Background: node i receives ~ Zipf-ish inlink counts.
  for (uint32_t i = 0; i < n_background; ++i) {
    uint32_t inlinks =
        static_cast<uint32_t>(rng.DiscretePowerLaw(1, 2.2)) % 60;
    for (uint32_t e = 0; e < inlinks; ++e) {
      NodeId src = static_cast<NodeId>(rng.UniformIndex(n_background));
      if (src != i) b.AddEdge(src, i);
    }
  }
  // Farm: each spam page gets exactly farm_degree inlinks from dedicated
  // boosters (fresh nodes so the degree is exact after dedup).
  for (uint32_t s = 0; s < farm_pages; ++s) {
    NodeId target = b.AddNode();
    for (uint32_t e = 0; e < farm_degree; ++e) {
      NodeId src = b.AddNode();
      b.AddEdge(src, target);
    }
  }
  return b.Build();
}

TEST(DegreeOutlierTest, DetectsUniformDegreeFarm) {
  WebGraph g = GraphWithDegreeSpike(300, 17, 11);
  DegreeOutlierConfig config;
  config.min_degree = 3;
  config.min_bucket_size = 50;
  config.use_outdegree = false;
  auto result = DetectDegreeOutliers(g, config);
  bool spike_at_17 = false;
  for (const auto& spike : result.spikes) {
    if (spike.indegree && spike.degree == 17) spike_at_17 = true;
  }
  EXPECT_TRUE(spike_at_17);
  // The farm targets are flagged.
  uint64_t suspected = 0;
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    if (result.suspected[x] && g.InDegree(x) == 17) ++suspected;
  }
  EXPECT_GE(suspected, 300u);
}

TEST(DegreeOutlierTest, CleanPowerLawGraphHasFewSpikes) {
  WebGraph g = GraphWithDegreeSpike(0, 0, 13);
  DegreeOutlierConfig config;
  config.min_degree = 3;
  config.min_bucket_size = 50;
  auto result = DetectDegreeOutliers(g, config);
  EXPECT_LE(result.spikes.size(), 2u);
}

TEST(DegreeOutlierTest, MissesIrregularFarm) {
  // Farm whose targets have randomized degrees — mimicking natural link
  // patterns defeats the statistical detector (the paper's argument for
  // mass-based detection).
  util::Rng rng(17);
  GraphBuilder b;
  const uint32_t n_background = 3000;
  for (uint32_t i = 0; i < n_background; ++i) b.AddNode();
  for (uint32_t i = 0; i < n_background; ++i) {
    uint32_t inlinks =
        static_cast<uint32_t>(rng.DiscretePowerLaw(1, 2.2)) % 60;
    for (uint32_t e = 0; e < inlinks; ++e) {
      NodeId src = static_cast<NodeId>(rng.UniformIndex(n_background));
      if (src != i) b.AddEdge(src, i);
    }
  }
  std::vector<NodeId> targets;
  for (uint32_t s = 0; s < 100; ++s) {
    NodeId target = b.AddNode();
    targets.push_back(target);
    uint32_t deg = static_cast<uint32_t>(rng.DiscretePowerLaw(3, 2.2)) % 50;
    for (uint32_t e = 0; e <= deg; ++e) {
      NodeId src = b.AddNode();
      b.AddEdge(src, target);
    }
  }
  WebGraph g = b.Build();
  DegreeOutlierConfig config;
  config.min_degree = 3;
  config.min_bucket_size = 50;
  config.use_outdegree = false;
  auto result = DetectDegreeOutliers(g, config);
  uint64_t flagged_targets = 0;
  for (NodeId t : targets) flagged_targets += result.suspected[t];
  EXPECT_LT(flagged_targets, 50u);  // most of the irregular farm escapes
}

TEST(DegreeOutlierTest, TinyGraphProducesNoFit) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  auto result = DetectDegreeOutliers(g, DegreeOutlierConfig{});
  EXPECT_TRUE(result.spikes.empty());
  for (bool s : result.suspected) EXPECT_FALSE(s);
}

TEST(DegreeOutlierTest, SpikeMetadataConsistent) {
  WebGraph g = GraphWithDegreeSpike(200, 23, 29);
  DegreeOutlierConfig config;
  config.min_degree = 3;
  config.min_bucket_size = 50;
  config.use_outdegree = false;
  auto result = DetectDegreeOutliers(g, config);
  for (const auto& spike : result.spikes) {
    EXPECT_GE(spike.observed, config.min_bucket_size);
    EXPECT_GT(static_cast<double>(spike.observed),
              config.overpopulation_factor * spike.expected);
  }
}

}  // namespace
}  // namespace spammass
