// Tests of the label store.

#include "core/labels.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using core::LabelStore;
using core::NodeLabel;

TEST(LabelStoreTest, DefaultsToGood) {
  LabelStore labels(4);
  EXPECT_EQ(labels.num_nodes(), 4u);
  for (uint32_t x = 0; x < 4; ++x) {
    EXPECT_TRUE(labels.IsGood(x));
    EXPECT_FALSE(labels.IsSpam(x));
  }
  EXPECT_NEAR(labels.GoodFraction(), 1.0, 1e-12);
}

TEST(LabelStoreTest, SetAndGet) {
  LabelStore labels(5);
  labels.Set(1, NodeLabel::kSpam);
  labels.Set(3, NodeLabel::kUnknown);
  labels.Set(4, NodeLabel::kNonExistent);
  EXPECT_EQ(labels.Get(1), NodeLabel::kSpam);
  EXPECT_EQ(labels.Get(3), NodeLabel::kUnknown);
  EXPECT_TRUE(labels.IsSpam(1));
  EXPECT_FALSE(labels.IsGood(3));
}

TEST(LabelStoreTest, NodeSets) {
  LabelStore labels(6);
  labels.Set(2, NodeLabel::kSpam);
  labels.Set(5, NodeLabel::kSpam);
  EXPECT_EQ(labels.SpamNodes(), (std::vector<graph::NodeId>{2, 5}));
  EXPECT_EQ(labels.GoodNodes(), (std::vector<graph::NodeId>{0, 1, 3, 4}));
  EXPECT_EQ(labels.CountLabel(NodeLabel::kSpam), 2u);
  EXPECT_NEAR(labels.GoodFraction(), 4.0 / 6, 1e-12);
}

TEST(LabelStoreTest, LabelNames) {
  EXPECT_STREQ(core::NodeLabelToString(NodeLabel::kGood), "good");
  EXPECT_STREQ(core::NodeLabelToString(NodeLabel::kSpam), "spam");
  EXPECT_STREQ(core::NodeLabelToString(NodeLabel::kUnknown), "unknown");
  EXPECT_STREQ(core::NodeLabelToString(NodeLabel::kNonExistent),
               "non-existent");
}

TEST(LabelStoreTest, EmptyStore) {
  LabelStore labels;
  EXPECT_EQ(labels.num_nodes(), 0u);
  EXPECT_EQ(labels.GoodFraction(), 0.0);
  EXPECT_TRUE(labels.SpamNodes().empty());
}

}  // namespace
}  // namespace spammass
