// Sweep-variant validation matrix. The default configuration (scalar
// instruction set, float64 lanes, plain CSR) is the bit-exact reference;
// this suite pins every other combination against it:
//   * compressed gather changes no floating-point operation, so
//     compressed+scalar+f64 must be BITWISE identical to the reference,
//   * vectorized sweeps preserve per-lane accumulation order and may
//     differ only by FMA contraction — near-equality with a tight bound,
//   * mixed-f32 runs float32 pre-sweeps but always refines in float64, so
//     converged solves meet the same tolerance contract,
//   * every variant stays bit-identical to ITSELF across thread counts
//     (the deterministic chunked reductions are variant-independent),
//   * invalid option combinations fail validation up front.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/kernel.h"
#include "pagerank/simd.h"
#include "pagerank/solver.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;
using pagerank::Method;
using pagerank::SimdPolicy;
using pagerank::SolverOptions;
using pagerank::SweepPrecision;
namespace simd = pagerank::simd;

WebGraph MakeGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b(n);
  for (uint32_t e = 0; e < edges; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(n * 3 / 4));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

std::vector<JumpVector> MakeJumps(uint32_t n, uint32_t k, uint64_t seed) {
  std::vector<JumpVector> jumps;
  jumps.push_back(JumpVector::Uniform(n));
  util::Rng rng(seed);
  for (uint32_t j = 1; j < k; ++j) {
    std::vector<double> v(n);
    double norm = 0;
    for (double& x : v) {
      x = rng.Uniform01();
      norm += x;
    }
    for (double& x : v) x /= norm;
    jumps.push_back(JumpVector::FromDense(std::move(v)));
  }
  return jumps;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

class SweepVariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = MakeGraph(900, 5400, /*seed=*/101);
    compressed_graph_ = MakeGraph(900, 5400, /*seed=*/101);
    compressed_graph_.BuildCompressedInAdjacency();
    jumps_ = MakeJumps(graph_.num_nodes(), 4, /*seed=*/5);
  }

  SolverOptions BaseOptions() {
    SolverOptions opt;
    opt.method = Method::kJacobi;
    opt.tolerance = 1e-12;
    opt.max_iterations = 300;
    return opt;
  }

  std::vector<std::vector<double>> Solve(const WebGraph& g,
                                         const SolverOptions& opt) {
    auto results = pagerank::ComputePageRankMulti(g, jumps_, opt);
    EXPECT_TRUE(results.ok()) << results.status().ToString();
    std::vector<std::vector<double>> scores;
    for (auto& r : results.value()) {
      EXPECT_TRUE(r.converged);
      scores.push_back(std::move(r.scores));
    }
    return scores;
  }

  WebGraph graph_;
  WebGraph compressed_graph_;
  std::vector<JumpVector> jumps_;
};

TEST_F(SweepVariantTest, CompressedScalarF64BitIdenticalToReference) {
  for (auto policy : {pagerank::DanglingPolicy::kLeak,
                      pagerank::DanglingPolicy::kRedistributeToJump}) {
    SolverOptions ref = BaseOptions();
    ref.dangling = policy;
    SolverOptions comp = ref;
    comp.compressed_gather = true;
    auto want = Solve(graph_, ref);
    auto got = Solve(compressed_graph_, comp);
    ASSERT_EQ(want.size(), got.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_TRUE(BitIdentical(want[j], got[j])) << "lane " << j;
    }
  }
}

TEST_F(SweepVariantTest, SimdMatchesScalarWithinFmaTolerance) {
  if (simd::Best() == simd::Level::kScalar) {
    GTEST_SKIP() << "host has no vector backend";
  }
  SolverOptions ref = BaseOptions();
  auto want = Solve(graph_, ref);
  for (bool compressed : {false, true}) {
    SolverOptions vec = BaseOptions();
    vec.simd = SimdPolicy::kAuto;
    vec.compressed_gather = compressed;
    auto got = Solve(compressed ? compressed_graph_ : graph_, vec);
    ASSERT_EQ(want.size(), got.size());
    for (size_t j = 0; j < want.size(); ++j) {
      for (size_t x = 0; x < want[j].size(); ++x) {
        // Same accumulation order; only FMA contraction differs.
        EXPECT_NEAR(got[j][x], want[j][x], 1e-9)
            << "lane " << j << " node " << x
            << " compressed=" << compressed;
      }
    }
  }
}

TEST_F(SweepVariantTest, MixedF32MeetsToleranceContract) {
  SolverOptions ref = BaseOptions();
  ref.tolerance = 1e-10;
  auto want = Solve(graph_, ref);
  for (auto simd_policy : {SimdPolicy::kScalar, SimdPolicy::kAuto}) {
    for (bool compressed : {false, true}) {
      SolverOptions mixed = ref;
      mixed.precision = SweepPrecision::kMixedF32;
      mixed.simd = simd_policy;
      mixed.compressed_gather = compressed;
      const WebGraph& g = compressed ? compressed_graph_ : graph_;
      auto results = pagerank::ComputePageRankMulti(g, jumps_, mixed);
      ASSERT_TRUE(results.ok()) << results.status().ToString();
      for (size_t j = 0; j < results.value().size(); ++j) {
        const auto& r = results.value()[j];
        // The final sweeps are float64: the convergence contract holds.
        EXPECT_TRUE(r.converged) << "lane " << j;
        EXPECT_LT(r.residual, mixed.tolerance) << "lane " << j;
        for (size_t x = 0; x < r.scores.size(); ++x) {
          // Both solves land within solver tolerance of the same fixed
          // point; the residual bounds the distance via the contraction.
          EXPECT_NEAR(r.scores[x], want[j][x], 1e-8)
              << "lane " << j << " node " << x;
        }
      }
    }
  }
}

TEST_F(SweepVariantTest, EveryVariantThreadCountDeterministic) {
  struct Case {
    SimdPolicy simd;
    SweepPrecision precision;
    bool compressed;
  };
  const Case cases[] = {
      {SimdPolicy::kScalar, SweepPrecision::kFloat64, false},
      {SimdPolicy::kScalar, SweepPrecision::kFloat64, true},
      {SimdPolicy::kAuto, SweepPrecision::kFloat64, false},
      {SimdPolicy::kAuto, SweepPrecision::kMixedF32, true},
  };
  for (const Case& c : cases) {
    SolverOptions opt = BaseOptions();
    opt.simd = c.simd;
    opt.precision = c.precision;
    opt.compressed_gather = c.compressed;
    const WebGraph& g = c.compressed ? compressed_graph_ : graph_;
    opt.num_threads = 1;
    auto serial = Solve(g, opt);
    for (uint32_t threads : {2u, 4u, 8u}) {
      opt.num_threads = threads;
      auto parallel = Solve(g, opt);
      ASSERT_EQ(serial.size(), parallel.size());
      for (size_t j = 0; j < serial.size(); ++j) {
        EXPECT_TRUE(BitIdentical(serial[j], parallel[j]))
            << "lane " << j << " threads " << threads;
      }
    }
  }
}

TEST_F(SweepVariantTest, DefaultOptionsUnchangedByVariantMachinery) {
  // The default-constructed options ARE the reference variant; a solve
  // through them must be bitwise reproducible call over call (no hidden
  // state from the variant plumbing).
  SolverOptions opt = BaseOptions();
  auto a = Solve(graph_, opt);
  auto b = Solve(graph_, opt);
  for (size_t j = 0; j < a.size(); ++j) {
    EXPECT_TRUE(BitIdentical(a[j], b[j])) << "lane " << j;
  }
}

TEST_F(SweepVariantTest, PowerIterationSupportsVariants) {
  SolverOptions ref = BaseOptions();
  ref.method = Method::kPowerIteration;
  ref.tolerance = 1e-12;
  auto want = pagerank::ComputeUniformPageRank(graph_, ref);
  ASSERT_TRUE(want.ok());

  SolverOptions comp = ref;
  comp.compressed_gather = true;
  auto got = pagerank::ComputeUniformPageRank(compressed_graph_, comp);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(BitIdentical(want.value().scores, got.value().scores));

  if (simd::Best() != simd::Level::kScalar) {
    SolverOptions vec = ref;
    vec.simd = SimdPolicy::kAuto;
    auto vec_got = pagerank::ComputeUniformPageRank(graph_, vec);
    ASSERT_TRUE(vec_got.ok());
    for (size_t x = 0; x < want.value().scores.size(); ++x) {
      EXPECT_NEAR(vec_got.value().scores[x], want.value().scores[x], 1e-9);
    }
  }
}

TEST_F(SweepVariantTest, InvalidCombinationsRejected) {
  JumpVector v = JumpVector::Uniform(graph_.num_nodes());

  // Forcing the level the host lacks fails; kAuto never does.
  SolverOptions forced = BaseOptions();
  forced.simd = simd::IsSupported(simd::Level::kAvx2) ? SimdPolicy::kNeon
                                                      : SimdPolicy::kAvx2;
  EXPECT_FALSE(pagerank::ComputePageRank(graph_, v, forced).ok());

  SolverOptions auto_ok = BaseOptions();
  auto_ok.simd = SimdPolicy::kAuto;
  EXPECT_TRUE(pagerank::ComputePageRank(graph_, v, auto_ok).ok());

  // Mixed precision is a Jacobi-only feature.
  SolverOptions mixed_gs = BaseOptions();
  mixed_gs.method = Method::kGaussSeidel;
  mixed_gs.precision = SweepPrecision::kMixedF32;
  EXPECT_FALSE(pagerank::ComputePageRank(graph_, v, mixed_gs).ok());

  // Compressed gather needs the graph to carry the compressed adjacency.
  SolverOptions comp = BaseOptions();
  comp.compressed_gather = true;
  auto missing = pagerank::ComputePageRank(graph_, v, comp);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kFailedPrecondition);

  // ... and is not defined for the sequential sweeps.
  SolverOptions comp_gs = comp;
  comp_gs.method = Method::kGaussSeidel;
  EXPECT_FALSE(
      pagerank::ComputePageRank(compressed_graph_, v, comp_gs).ok());
}

TEST_F(SweepVariantTest, StringConversionsRoundTrip) {
  for (SimdPolicy policy : {SimdPolicy::kScalar, SimdPolicy::kAuto,
                            SimdPolicy::kAvx2, SimdPolicy::kNeon}) {
    auto parsed =
        pagerank::SimdPolicyFromString(pagerank::SimdPolicyToString(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), policy);
  }
  EXPECT_FALSE(pagerank::SimdPolicyFromString("avx512").ok());
  for (SweepPrecision precision :
       {SweepPrecision::kFloat64, SweepPrecision::kMixedF32}) {
    auto parsed = pagerank::SweepPrecisionFromString(
        pagerank::SweepPrecisionToString(precision));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), precision);
  }
  EXPECT_FALSE(pagerank::SweepPrecisionFromString("f16").ok());
}

}  // namespace
}  // namespace spammass
