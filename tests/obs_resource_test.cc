// Resource-telemetry correctness: the /proc parsers against fixture text
// (including the hostile comm-name cases), monotonicity of the published
// counters under out-of-order publishes, and sampler lifecycle under
// concurrent Start/Stop/SampleOnce — the latter are the TSan targets (the
// CI tsan job runs -R '...|Obs').

#include "obs/resource.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace spammass::obs {
namespace {

TEST(ObsResourceTest, ParseStatmFixture) {
  uint64_t vm = 0, rss = 0;
  ASSERT_TRUE(ParseProcStatm("12345 678 90 1 0 234 0\n", 4096, &vm, &rss));
  EXPECT_EQ(vm, 12345u * 4096);
  EXPECT_EQ(rss, 678u * 4096);
}

TEST(ObsResourceTest, ParseStatmRejectsMalformed) {
  uint64_t vm = 0, rss = 0;
  EXPECT_FALSE(ParseProcStatm("", 4096, &vm, &rss));
  EXPECT_FALSE(ParseProcStatm("12345\n", 4096, &vm, &rss));
  EXPECT_FALSE(ParseProcStatm("garbage text", 4096, &vm, &rss));
}

TEST(ObsResourceTest, ParseStatusFixture) {
  const char kStatus[] =
      "Name:\tspammass_cli\n"
      "Umask:\t0022\n"
      "VmPeak:\t  123456 kB\n"
      "VmHWM:\t   98765 kB\n"
      "VmRSS:\t   54321 kB\n";
  uint64_t peak = 0;
  ASSERT_TRUE(ParseProcStatus(kStatus, &peak));
  EXPECT_EQ(peak, 98765u * 1024);
}

TEST(ObsResourceTest, ParseStatusRequiresLineStart) {
  // "XVmHWM:" must not match; a missing line fails cleanly.
  uint64_t peak = 0;
  EXPECT_FALSE(ParseProcStatus("XVmHWM:\t1 kB\n", &peak));
  EXPECT_FALSE(ParseProcStatus("VmPeak:\t1 kB\n", &peak));
}

TEST(ObsResourceTest, ParseStatFixture) {
  // pid (comm) state ppid pgrp session tty_nr tpgid flags minflt cminflt
  // majflt ... — tty_nr/tpgid are -1 here, as for daemons.
  const char kStat[] =
      "1234 (spammass_cli) S 1 1234 1234 -1 -1 4194304 "
      "5678 0 42 0 10 2 0 0 20 0 1 0 100 1000000 250\n";
  uint64_t minor = 0, major = 0;
  ASSERT_TRUE(ParseProcStat(kStat, &minor, &major));
  EXPECT_EQ(minor, 5678u);
  EXPECT_EQ(major, 42u);
}

TEST(ObsResourceTest, ParseStatSurvivesHostileCommNames) {
  // comm is attacker-ish input: a thread may be named anything, including
  // strings with spaces, parentheses, and digits. Parsing anchors on the
  // LAST ')' so the fields after it are unambiguous.
  const char kStat[] =
      "99 (a (weird) name) R 1 99 99 -1 -1 0 "
      "111 0 9 0 1 1 0 0 20 0 1 0 5 1000 10\n";
  uint64_t minor = 0, major = 0;
  ASSERT_TRUE(ParseProcStat(kStat, &minor, &major));
  EXPECT_EQ(minor, 111u);
  EXPECT_EQ(major, 9u);
}

TEST(ObsResourceTest, ParseStatRejectsMalformed) {
  uint64_t minor = 0, major = 0;
  EXPECT_FALSE(ParseProcStat("", &minor, &major));
  EXPECT_FALSE(ParseProcStat("no parens here", &minor, &major));
  EXPECT_FALSE(ParseProcStat("1 (x) S 1 2", &minor, &major));
}

TEST(ObsResourceTest, ParseIoFixture) {
  const char kIo[] =
      "rchar: 999999\n"
      "wchar: 888888\n"
      "syscr: 100\n"
      "syscw: 50\n"
      "read_bytes: 4096000\n"
      "write_bytes: 8192\n"
      "cancelled_write_bytes: 0\n";
  uint64_t rd = 0, wr = 0;
  ASSERT_TRUE(ParseProcIo(kIo, &rd, &wr));
  // read_bytes, not rchar: block-device traffic only.
  EXPECT_EQ(rd, 4096000u);
  EXPECT_EQ(wr, 8192u);
}

TEST(ObsResourceTest, ParseIoRejectsPartial) {
  uint64_t rd = 0, wr = 0;
  EXPECT_FALSE(ParseProcIo("read_bytes: 1\n", &rd, &wr));
  EXPECT_FALSE(ParseProcIo("", &rd, &wr));
}

#if defined(__linux__)
TEST(ObsResourceTest, SampleReadsLiveProcess) {
  const ResourceUsage usage = SampleResourceUsage();
  // Memory and fault groups exist on every Linux /proc; io may be
  // compiled out, so only the first two are asserted.
  ASSERT_TRUE(usage.has_memory);
  EXPECT_GT(usage.rss_bytes, 0u);
  EXPECT_GE(usage.vm_bytes, usage.rss_bytes);
  EXPECT_GE(usage.rss_peak_bytes, usage.rss_bytes);
  ASSERT_TRUE(usage.has_faults);
  EXPECT_GT(usage.minor_faults, 0u);
}
#endif  // defined(__linux__)

TEST(ObsResourceTest, PublishedCountersAreMonotonic) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* major = registry.GetCounter("process.major_faults");

  ResourceUsage usage;
  usage.has_faults = true;
  usage.minor_faults = 1000;
  usage.major_faults = 50;
  PublishResourceUsage(usage);
  const uint64_t after_first = major->Value();

  // A later snapshot reporting a SMALLER cumulative value (cannot happen
  // from a real kernel, but the publisher must not regress the registry
  // counter regardless) advances the counter by zero, not by wrap-around.
  usage.major_faults = 10;
  PublishResourceUsage(usage);
  EXPECT_EQ(major->Value(), after_first);

  usage.major_faults = 60;
  PublishResourceUsage(usage);
  EXPECT_EQ(major->Value(), after_first + 50);
}

TEST(ObsResourceTest, SamplerStartStopIsIdempotent) {
  ResourceSampler sampler(ResourceSampler::Options{5});
  sampler.Start();
  sampler.Start();  // no-op: already running
  sampler.Stop();
  sampler.Stop();  // no-op: already stopped
  EXPECT_GE(sampler.samples(), 1u);  // the loop samples once immediately
  sampler.Start();  // restartable after a stop
  sampler.Stop();
  EXPECT_GE(sampler.samples(), 2u);
}

TEST(ObsResourceTest, SamplerConcurrentLifecycle) {
  // Hammer Start/Stop/SampleOnce from several threads; TSan verifies the
  // locking, the test verifies nothing deadlocks or crashes and samples
  // were actually taken.
  ResourceSampler sampler(ResourceSampler::Options{1});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sampler, t] {
      for (int i = 0; i < 25; ++i) {
        if (t % 2 == 0) {
          sampler.Start();
          sampler.Stop();
        } else {
          sampler.SampleOnce();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GE(sampler.samples(), 50u);  // the two SampleOnce threads alone
}

TEST(ObsResourceTest, SamplerPublishesIntoGlobalRegistry) {
  Counter* samples =
      MetricsRegistry::Global().GetCounter("process.resource_samples");
  const uint64_t before = samples->Value();
  ResourceSampler sampler;
  sampler.SampleOnce();
#if defined(__linux__)
  EXPECT_GT(samples->Value(), before);
#else
  // Off Linux every /proc group is absent and nothing publishes.
  EXPECT_EQ(samples->Value(), before);
#endif
}

}  // namespace
}  // namespace spammass::obs
