// The weighted (division-free) sweep kernel against a straightforward
// division-based reference. The kernel multiplies by the cached reciprocal
// 1/outdeg(x) instead of dividing by outdeg(x); IEEE rounds the two
// expressions differently (p·(1/d) carries the reciprocal's rounding
// error), so the comparison is NEAR-equality with a tight per-entry bound,
// NOT bitwise — the genuine bit-identity guarantees (multi-vector vs.
// standalone, parallel vs. serial, workspace reuse vs. fresh) live in the
// dedicated suites. Also covers the deterministic chunk decomposition and
// the dangling helpers the sweeps are built from.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/kernel.h"
#include "pagerank/solver.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;
using pagerank::SolverOptions;
namespace kernel = pagerank::kernel;

WebGraph MakeSyntheticGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b(n);
  for (uint32_t e = 0; e < edges; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(n * 3 / 4));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

/// Seed-style Jacobi solve: per-edge division p[x]/outdeg(x), full-n
/// dangling scan, no precomputed weights. The ground truth the optimized
/// kernel must reproduce up to reciprocal rounding.
std::vector<double> ReferenceJacobi(const WebGraph& g, const JumpVector& v,
                                    double c, bool redistribute,
                                    int iterations) {
  const NodeId n = g.num_nodes();
  std::vector<double> p(v.values());
  std::vector<double> next(n);
  for (int i = 0; i < iterations; ++i) {
    double dangling = 0;
    if (redistribute) {
      for (NodeId x = 0; x < n; ++x) {
        if (g.IsDangling(x)) dangling += p[x];
      }
    }
    for (NodeId y = 0; y < n; ++y) {
      double in_sum = 0;
      for (NodeId x : g.InNeighbors(y)) {
        in_sum += p[x] / g.OutDegree(x);
      }
      next[y] = c * (in_sum + v[y] * dangling) + (1.0 - c) * v[y];
    }
    p.swap(next);
  }
  return p;
}

TEST(KernelEquivalenceTest, WeightedSolveMatchesDivisionReference) {
  WebGraph g = MakeSyntheticGraph(600, 3000, /*seed=*/11);
  JumpVector v = JumpVector::Uniform(g.num_nodes());
  SolverOptions opt;
  opt.tolerance = 0.0;  // pin the iteration count
  opt.max_iterations = 50;

  for (bool redistribute : {false, true}) {
    opt.dangling = redistribute
                       ? pagerank::DanglingPolicy::kRedistributeToJump
                       : pagerank::DanglingPolicy::kLeak;
    auto got = pagerank::ComputePageRank(g, v, opt);
    ASSERT_TRUE(got.ok());
    std::vector<double> want =
        ReferenceJacobi(g, v, opt.damping, redistribute, opt.max_iterations);
    ASSERT_EQ(got.value().scores.size(), want.size());
    for (size_t x = 0; x < want.size(); ++x) {
      EXPECT_NEAR(got.value().scores[x], want[x], 1e-15)
          << "node " << x << " (redistribute=" << redistribute << ")";
    }
  }
}

TEST(KernelEquivalenceTest, SingleSweepMatchesReference) {
  WebGraph g = MakeSyntheticGraph(400, 1600, /*seed=*/29);
  const auto n = static_cast<uint64_t>(g.num_nodes());
  JumpVector v = JumpVector::Uniform(g.num_nodes());

  // Start from a non-trivial iterate so the sweep exercises varied values.
  util::Rng rng(5);
  std::vector<double> p(n);
  for (double& x : p) x = rng.Uniform01();

  std::vector<double> scaled(n), next(n), next_scaled(n), partials;
  const double dangling = 0.0;  // kLeak
  double diff = 0;
  kernel::ScaleByInvOutDegree(g, 1, p.data(), scaled.data(), nullptr);
  kernel::WeightedJacobiSweepMulti(g, 1, v.values().data(), 0.85, &dangling,
                                   p.data(), scaled.data(), next.data(),
                                   next_scaled.data(), &partials, &diff,
                                   nullptr);

  // The fused rescale output must be bitwise what a standalone
  // ScaleByInvOutDegree pass over `next` produces.
  std::vector<double> rescaled(n);
  kernel::ScaleByInvOutDegree(g, 1, next.data(), rescaled.data(), nullptr);

  for (NodeId y = 0; y < g.num_nodes(); ++y) {
    double in_sum = 0;
    for (NodeId x : g.InNeighbors(y)) in_sum += p[x] / g.OutDegree(x);
    double want = 0.85 * in_sum + 0.15 * v[y];
    EXPECT_NEAR(next[y], want, 1e-15) << "node " << y;
    EXPECT_EQ(next_scaled[y], rescaled[y]) << "node " << y;
  }
}

TEST(KernelEquivalenceTest, ScaleByInvOutDegreeZeroOnDangling) {
  WebGraph g = MakeSyntheticGraph(300, 900, /*seed=*/41);
  ASSERT_GT(g.num_dangling(), 0u);
  const auto n = static_cast<uint64_t>(g.num_nodes());
  std::vector<double> p(n, 0.5), scaled(n, -1.0);
  kernel::ScaleByInvOutDegree(g, 1, p.data(), scaled.data(), nullptr);
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    if (g.IsDangling(x)) {
      // Exactly zero, not merely small: the sweep relies on x + 0.0 == x.
      EXPECT_EQ(scaled[x], 0.0) << "dangling node " << x;
    } else {
      EXPECT_NEAR(scaled[x], 0.5 / g.OutDegree(x), 1e-16);
    }
  }
}

TEST(KernelEquivalenceTest, DanglingSumsMatchFullScan) {
  WebGraph g = MakeSyntheticGraph(500, 1500, /*seed=*/61);
  ASSERT_GT(g.num_dangling(), 0u);
  const auto n = static_cast<uint64_t>(g.num_nodes());
  util::Rng rng(7);
  constexpr uint32_t k = 3;
  std::vector<double> p(n * k);
  for (double& x : p) x = rng.Uniform01();

  std::vector<double> partials;
  double sums[k];
  kernel::DanglingSums(g, k, p.data(), &partials, sums, nullptr);

  for (uint32_t j = 0; j < k; ++j) {
    double want = 0;
    for (NodeId x = 0; x < g.num_nodes(); ++x) {
      if (g.IsDangling(x)) want += p[x * k + j];
    }
    EXPECT_NEAR(sums[j], want, 1e-12) << "lane " << j;
  }
}

TEST(KernelChunkingTest, DecompositionCoversRangeExactly) {
  for (uint64_t total : {0ull, 1ull, 255ull, 256ull, 257ull, 10'000ull,
                         1'000'000ull}) {
    const uint64_t chunks = kernel::NumChunks(total);
    if (total == 0) {
      EXPECT_EQ(chunks, 0u);
      continue;
    }
    EXPECT_LE(chunks, kernel::kMaxChunks);
    const uint64_t size = kernel::ChunkSize(total);
    EXPECT_GE(size, std::min(total, kernel::kMinChunkSize));
    // Chunks tile [0, total) with no gaps or overlaps.
    uint64_t covered = 0, seen = 0;
    kernel::ForEachChunk(nullptr, total,
                         [&](uint64_t index, uint64_t begin, uint64_t end) {
                           EXPECT_EQ(index, seen);
                           EXPECT_EQ(begin, covered);
                           EXPECT_LT(begin, end);
                           covered = end;
                           ++seen;
                         });
    EXPECT_EQ(covered, total);
    EXPECT_EQ(seen, chunks);
  }
}

TEST(KernelChunkingTest, DeterministicSumBitIdenticalAcrossPools) {
  constexpr uint64_t kTotal = 100'000;
  util::Rng rng(13);
  std::vector<double> values(kTotal);
  for (double& x : values) x = rng.Uniform01() - 0.5;

  auto range_sum = [&values](uint64_t begin, uint64_t end) {
    double s = 0;
    for (uint64_t i = begin; i < end; ++i) s += values[i];
    return s;
  };

  std::vector<double> partials;
  const double serial =
      kernel::DeterministicSum(nullptr, kTotal, range_sum, &partials);
  for (uint32_t threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    std::vector<double> pool_partials;
    const double parallel =
        kernel::DeterministicSum(&pool, kTotal, range_sum, &pool_partials);
    uint64_t a, b;
    std::memcpy(&a, &serial, sizeof(a));
    std::memcpy(&b, &parallel, sizeof(b));
    EXPECT_EQ(a, b) << "threads=" << threads;
  }
  // And the value itself is the plain left-to-right chunked sum.
  double direct = 0;
  for (size_t i = 0; i < partials.size(); ++i) direct += partials[i];
  EXPECT_EQ(serial, direct);
}

}  // namespace
}  // namespace spammass
