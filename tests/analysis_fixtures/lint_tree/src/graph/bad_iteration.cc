// Lint fixture: unordered-container iteration in a determinism-critical
// layer. Exercised by tests/analysis_tools_test.py; never compiled.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace spammass::graph {

std::vector<std::string> SortedHosts(
    const std::unordered_map<std::string, uint32_t>& host_index) {
  std::vector<std::string> hosts;
  for (const auto& [host, id] : host_index) {
    hosts.push_back(host);
  }
  return hosts;
}

uint64_t SumIds(const std::unordered_map<std::string, uint32_t>& index) {
  uint64_t sum = 0;
  for (auto it = index.begin(); it != index.end(); ++it) {
    sum += it->second;
  }
  return sum;
}

}  // namespace spammass::graph
