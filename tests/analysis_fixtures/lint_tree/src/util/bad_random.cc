// Lint fixture: banned randomness outside util/random. Exercised by
// tests/analysis_tools_test.py; never compiled.
#include <cstdlib>
#include <random>

namespace spammass::util {

int NoisySeed() {
  std::random_device device;
  std::srand(device());
  return std::rand();
}

}  // namespace spammass::util
