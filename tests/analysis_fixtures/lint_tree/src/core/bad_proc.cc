// Fixture: kernel introspection outside the sanctioned observability
// units. The two marked lines must trip resource-isolation; this comment's
// mention of /proc/self and mincore() must NOT (comments are stripped
// before the rule runs, but string literals are kept).
#include <string>

namespace fixture {

std::string StatmPath() {
  return "/proc/self/statm";  // violation: /proc path in a string literal
}

long ProbeCounters() {
  return perf_event_open(nullptr, 0, -1, -1, 0);  // violation: raw syscall
}

}  // namespace fixture
