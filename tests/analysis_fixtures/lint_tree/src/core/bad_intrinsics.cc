// Fixture: vector intrinsics outside src/pagerank/simd* — the detector
// layer must stay portable and reach SIMD only through the dispatch shim.
#include <immintrin.h>

#include <vector>

namespace spammass::core {

double SumFast(const std::vector<double>& values) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= values.size(); i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(&values[i]));
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  double total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < values.size(); ++i) total += values[i];
  return total;
}

}  // namespace spammass::core
