// Lint fixture: wall-clock reads inside src/. Exercised by
// tests/analysis_tools_test.py; never compiled.
#include <chrono>
#include <cstdint>

namespace spammass::pipeline {

uint64_t ManifestStamp() {
  return static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
}

uint64_t AdHocDurationOrigin() {
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace spammass::pipeline
