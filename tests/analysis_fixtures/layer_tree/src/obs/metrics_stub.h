// Layer fixture: stand-in obs header that bad_dep.h reaches up into.
namespace spammass::obs {}
