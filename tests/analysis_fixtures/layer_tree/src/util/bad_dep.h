// Layer fixture: util including obs is the banned include back-edge.
#include "obs/metrics_stub.h"
namespace spammass::util {}
