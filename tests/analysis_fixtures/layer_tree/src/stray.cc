// Layer fixture: file sitting directly under src/, outside every layer.
namespace spammass {}
