// Layer fixture: directory that is not a declared layer.
namespace spammass::newlayer {}
