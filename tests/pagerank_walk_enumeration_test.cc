// Tests of the explicit walk-sum oracle (Section 3.2 semantics).

#include "pagerank/walk_enumeration.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "pagerank/contribution.h"
#include "synth/paper_graphs.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::EnumerateWalks;
using pagerank::WalkSumContribution;

constexpr double kC = 0.85;

TEST(WalkEnumerationTest, ChainHasExactlyOneWalk) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  WebGraph g = b.Build();
  auto walks = EnumerateWalks(g, 0, 2, 10);
  ASSERT_EQ(walks.size(), 1u);
  EXPECT_EQ(walks[0].length(), 2u);
  EXPECT_DOUBLE_EQ(walks[0].weight, 1.0);
  EXPECT_EQ(walks[0].nodes, (std::vector<NodeId>{0, 1, 2}));
}

TEST(WalkEnumerationTest, BranchingWeights) {
  // 0 -> {1, 2}; 1 -> 3; 2 -> 3: two walks of weight 1/2 each.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  WebGraph g = b.Build();
  auto walks = EnumerateWalks(g, 0, 3, 10);
  ASSERT_EQ(walks.size(), 2u);
  EXPECT_DOUBLE_EQ(walks[0].weight, 0.5);
  EXPECT_DOUBLE_EQ(walks[1].weight, 0.5);
}

TEST(WalkEnumerationTest, CyclesProduceWalksPerLength) {
  // 0 <-> 1: walks 0->1 (len 1), 0->1->0->1 (len 3), ... up to the bound.
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  WebGraph g = b.Build();
  auto walks = EnumerateWalks(g, 0, 1, 7);
  ASSERT_EQ(walks.size(), 4u);  // lengths 1, 3, 5, 7
  for (const auto& w : walks) {
    EXPECT_EQ(w.length() % 2, 1u);
    EXPECT_DOUBLE_EQ(w.weight, 1.0);
  }
}

TEST(WalkEnumerationTest, NoWalkBetweenDisconnectedNodes) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  EXPECT_TRUE(EnumerateWalks(g, 1, 0, 10).empty());
  EXPECT_TRUE(EnumerateWalks(g, 0, 2, 10).empty());
}

TEST(WalkEnumerationTest, WalkSumMatchesSolverOnFigure2) {
  // Independent cross-check of Theorem 2: the walk sum of Section 3.2 must
  // agree with the PR(v^x) solver on the paper's example graph (acyclic,
  // so a modest length bound is exact).
  auto fig = synth::MakeFigure2Graph();
  pagerank::SolverOptions opt;
  opt.tolerance = 1e-15;
  opt.max_iterations = 2000;
  const double vx = 1.0 / fig.graph.num_nodes();
  for (NodeId x : {fig.s1, fig.s5, fig.g1, fig.s0, fig.g0}) {
    auto solver_q = pagerank::ComputeNodeContribution(fig.graph, x, opt);
    ASSERT_TRUE(solver_q.ok());
    for (NodeId y = 0; y < fig.graph.num_nodes(); ++y) {
      double walk_q = WalkSumContribution(fig.graph, x, y, kC, vx, 8);
      EXPECT_NEAR(walk_q, solver_q.value().scores[y], 1e-12)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(WalkEnumerationTest, WalkSumConvergesOnCyclicGraph) {
  // 2-cycle: q_0^0 = (1−c)v₀/(1−c²) in the limit; truncation approaches it.
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  WebGraph g = b.Build();
  const double vx = 0.5;
  double exact = (1 - kC) * vx / (1 - kC * kC);
  double truncated = WalkSumContribution(g, 0, 0, kC, vx, 40);
  EXPECT_NEAR(truncated, exact, 1e-3);
  EXPECT_LT(truncated, exact);  // truncation always underestimates
  // Longer bound gets closer.
  double longer = WalkSumContribution(g, 0, 0, kC, vx, 80);
  EXPECT_GT(longer, truncated);
}

TEST(WalkEnumerationDeathTest, WalkBudgetEnforced) {
  // Complete-ish graph explodes combinatorially; the budget must trip.
  GraphBuilder b(6);
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = 0; j < 6; ++j) {
      if (i != j) b.AddEdge(i, j);
    }
  }
  WebGraph g = b.Build();
  EXPECT_DEATH(EnumerateWalks(g, 0, 1, 30, /*max_walks=*/100),
               "walk budget");
}

}  // namespace
}  // namespace spammass
