// The v2.2 paged container and its zero-copy mmap loader: round trips
// (with and without host names), heap loading of paged files, migration
// from the v1/v2 formats, solver equivalence between the mmap and heap
// load paths, and — the part the trust model rests on — the failure paths.
// Every corruption test byte-patches a real file and demands a clean
// error Status: truncation, a misaligned section table entry, a flipped
// payload byte (sample checksum), and a header that claims more data than
// the file holds must all be caught during validation, never surface as a
// SIGBUS from a later array access.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/web_graph.h"
#include "pagerank/solver.h"
#include "util/checksum.h"
#include "util/random.h"
#include "util/status.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

// v2.2 geometry constants, mirrored from graph_io.cc so the corruption
// tests can patch real files. A layout change that breaks these breaks
// the format compatibility promise, so the duplication is the point.
constexpr uint64_t kPageSize = 4096;
constexpr uint64_t kHeaderChecksumOffset = kPageSize - 8;
constexpr uint64_t kSectionTableOffset = 40;
constexpr uint64_t kSectionEntryBytes = 40;

class GraphMmapTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  /// A graph big enough that every section exists and dangling nodes are
  /// plentiful: edges originate from the lower half only, so the upper
  /// half is dangling unless targeted by chance.
  static WebGraph SampleGraph(uint32_t n = 600, uint32_t edges = 4000,
                              bool with_names = false) {
    util::Rng rng(/*seed=*/29);
    GraphBuilder b(n);
    for (uint32_t e = 0; e < edges; ++e) {
      auto u = static_cast<NodeId>(rng.UniformIndex(n / 2));
      auto v = static_cast<NodeId>(rng.UniformIndex(n));
      if (u != v) b.AddEdge(u, v);
    }
    WebGraph g = b.Build();
    if (with_names) {
      std::vector<std::string> names(n);
      for (NodeId x = 0; x < n; ++x) {
        names[x] = "host-" + std::to_string(x) + ".example";
      }
      g.set_host_names(std::move(names));
    }
    return g;
  }

  static void ExpectSameGraph(const WebGraph& a, const WebGraph& b) {
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (NodeId x = 0; x < a.num_nodes(); ++x) {
      auto ao = a.OutNeighbors(x);
      auto bo = b.OutNeighbors(x);
      ASSERT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()))
          << "out-neighbors differ at node " << x;
      auto ai = a.InNeighbors(x);
      auto bi = b.InNeighbors(x);
      ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(), bi.end()))
          << "in-neighbors differ at node " << x;
      EXPECT_EQ(a.InvOutDegree(x), b.InvOutDegree(x)) << "node " << x;
    }
    auto ad = a.DanglingNodes();
    auto bd = b.DanglingNodes();
    EXPECT_TRUE(std::equal(ad.begin(), ad.end(), bd.begin(), bd.end()));
  }

  static std::vector<uint8_t> ReadFileBytes(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.is_open()) << path;
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                               std::istreambuf_iterator<char>());
    return bytes;
  }

  static void WriteFileBytes(const std::string& path,
                             const std::vector<uint8_t>& bytes) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(f.is_open()) << path;
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }

  /// Recomputes the header-page checksum after a deliberate header patch,
  /// so the test reaches the validation step it targets instead of
  /// tripping the header-checksum gate first.
  static void RepairHeaderChecksum(std::vector<uint8_t>* bytes) {
    util::Fnv1a64x8 hasher;
    hasher.Update(bytes->data(), kHeaderChecksumOffset);
    const uint64_t digest = hasher.digest();
    std::memcpy(bytes->data() + kHeaderChecksumOffset, &digest, 8);
  }

  /// Reads section-table entry `i`'s (offset, length) out of raw bytes.
  static std::pair<uint64_t, uint64_t> SectionGeometry(
      const std::vector<uint8_t>& bytes, uint32_t i) {
    uint64_t offset = 0, length = 0;
    const uint8_t* entry =
        bytes.data() + kSectionTableOffset + i * kSectionEntryBytes;
    std::memcpy(&offset, entry + 8, 8);
    std::memcpy(&length, entry + 16, 8);
    return {offset, length};
  }
};

TEST_F(GraphMmapTest, PagedRoundTripZeroCopy) {
  WebGraph g = SampleGraph();
  const std::string path = TempPath("paged_roundtrip.smwg");
  auto status = graph::WriteBinaryV22(g, path);
  ASSERT_TRUE(status.ok()) << status.ToString();

  auto loaded = graph::ReadBinaryMmap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().is_mapped());
  EXPECT_GT(loaded.value().mapped_bytes(), 0u);
  ExpectSameGraph(g, loaded.value());
}

TEST_F(GraphMmapTest, PagedRoundTripCarriesHostNames) {
  WebGraph g = SampleGraph(300, 1500, /*with_names=*/true);
  const std::string path = TempPath("paged_names.smwg");
  ASSERT_TRUE(graph::WriteBinaryV22(g, path).ok());

  auto loaded = graph::ReadBinaryMmap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameGraph(g, loaded.value());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_EQ(loaded.value().HostName(x), g.HostName(x)) << "node " << x;
  }
}

TEST_F(GraphMmapTest, HeapReaderLoadsPagedFiles) {
  // ReadBinary accepts v2.2 too (full validation, arrays copied out), so
  // a paged file is still consumable where mmap is unwanted.
  WebGraph g = SampleGraph();
  const std::string path = TempPath("paged_heap.smwg");
  ASSERT_TRUE(graph::WriteBinaryV22(g, path).ok());

  auto loaded = graph::ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().is_mapped());
  EXPECT_EQ(loaded.value().mapped_bytes(), 0u);
  ExpectSameGraph(g, loaded.value());
}

TEST_F(GraphMmapTest, MigratesV2FilesToPaged) {
  // The documented migration path: heap-load the old container, rewrite
  // paged, mmap the result.
  WebGraph g = SampleGraph(250, 1200, /*with_names=*/true);
  const std::string v2_path = TempPath("migrate_src.smwg");
  const std::string v22_path = TempPath("migrate_dst.smwg");
  ASSERT_TRUE(graph::WriteBinary(g, v2_path).ok());

  auto v2 = graph::ReadBinary(v2_path);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  ASSERT_TRUE(graph::WriteBinaryV22(v2.value(), v22_path).ok());

  auto mapped = graph::ReadBinaryMmap(v22_path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectSameGraph(g, mapped.value());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_EQ(mapped.value().HostName(x), g.HostName(x));
  }
}

TEST_F(GraphMmapTest, MigratesV1FilesToPaged) {
  WebGraph g = SampleGraph(120, 500);
  const std::string v1_path = TempPath("migrate_v1.smwg");
  const std::string v22_path = TempPath("migrate_v1_dst.smwg");
  ASSERT_TRUE(graph::WriteBinaryV1(g, v1_path).ok());

  auto v1 = graph::ReadBinary(v1_path);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ASSERT_TRUE(graph::WriteBinaryV22(v1.value(), v22_path).ok());

  auto mapped = graph::ReadBinaryMmap(v22_path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ExpectSameGraph(g, mapped.value());
}

TEST_F(GraphMmapTest, SolverScoresBitIdenticalToHeapLoad) {
  // The whole point of the mapped representation: the solver cannot tell.
  WebGraph g = SampleGraph();
  const std::string path = TempPath("paged_solver.smwg");
  ASSERT_TRUE(graph::WriteBinaryV22(g, path).ok());
  auto mapped = graph::ReadBinaryMmap(path);
  ASSERT_TRUE(mapped.ok());
  auto heap = graph::ReadBinary(path);
  ASSERT_TRUE(heap.ok());

  pagerank::SolverOptions opt;
  opt.method = pagerank::Method::kJacobi;
  opt.tolerance = 1e-12;
  auto from_mapped = pagerank::ComputeUniformPageRank(mapped.value(), opt);
  auto from_heap = pagerank::ComputeUniformPageRank(heap.value(), opt);
  ASSERT_TRUE(from_mapped.ok());
  ASSERT_TRUE(from_heap.ok());
  EXPECT_EQ(from_mapped.value().iterations, from_heap.value().iterations);
  ASSERT_EQ(from_mapped.value().scores.size(), from_heap.value().scores.size());
  for (size_t i = 0; i < from_heap.value().scores.size(); ++i) {
    EXPECT_EQ(from_mapped.value().scores[i], from_heap.value().scores[i])
        << "node " << i;
  }
}

TEST_F(GraphMmapTest, MmapRejectsNonPagedFiles) {
  WebGraph g = SampleGraph(100, 400);
  const std::string path = TempPath("plain_v2.smwg");
  ASSERT_TRUE(graph::WriteBinary(g, path).ok());

  // A v2.0 file has no header page, so whatever CSR bytes sit at the
  // header-checksum offset fail the very first gate — the point is only
  // that the rejection is a clean InvalidArgument, never a misparse.
  auto loaded = graph::ReadBinaryMmap(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument)
      << loaded.status().ToString();
}

TEST_F(GraphMmapTest, RejectsFileTruncatedBelowHeader) {
  WebGraph g = SampleGraph(100, 400);
  const std::string path = TempPath("trunc_header.smwg");
  ASSERT_TRUE(graph::WriteBinaryV22(g, path).ok());
  std::filesystem::resize_file(path, 100);

  auto loaded = graph::ReadBinaryMmap(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("truncated"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(GraphMmapTest, RejectsFileTruncatedMidSection) {
  // Header page intact, payload gone: the geometry pass must notice that
  // the advertised sections run past EOF before any array is touched.
  WebGraph g = SampleGraph();
  const std::string path = TempPath("trunc_body.smwg");
  ASSERT_TRUE(graph::WriteBinaryV22(g, path).ok());
  ASSERT_GT(std::filesystem::file_size(path), 2 * kPageSize);
  std::filesystem::resize_file(path, 2 * kPageSize);

  auto loaded = graph::ReadBinaryMmap(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("shorter than header claims"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(GraphMmapTest, RejectsMisalignedSection) {
  WebGraph g = SampleGraph();
  const std::string path = TempPath("misaligned.smwg");
  ASSERT_TRUE(graph::WriteBinaryV22(g, path).ok());

  std::vector<uint8_t> bytes = ReadFileBytes(path);
  // Knock the targets section (entry 1) off its page boundary.
  auto [offset, length] = SectionGeometry(bytes, 1);
  ASSERT_EQ(offset % kPageSize, 0u);
  const uint64_t skewed = offset + 8;
  std::memcpy(bytes.data() + kSectionTableOffset + 1 * kSectionEntryBytes + 8,
              &skewed, 8);
  RepairHeaderChecksum(&bytes);
  WriteFileBytes(path, bytes);

  auto loaded = graph::ReadBinaryMmap(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("misaligned section"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(GraphMmapTest, RejectsCorruptSectionPayload) {
  WebGraph g = SampleGraph();
  const std::string path = TempPath("bitflip.smwg");
  ASSERT_TRUE(graph::WriteBinaryV22(g, path).ok());

  std::vector<uint8_t> bytes = ReadFileBytes(path);
  // Flip one payload byte in the middle of the targets section. Test
  // sections are smaller than the 64 KiB sample window, so the bounded
  // sample checksum — the one release mmap loads always verify — covers
  // every byte and must catch it.
  auto [offset, length] = SectionGeometry(bytes, 1);
  ASSERT_GT(length, 0u);
  bytes[offset + length / 2] ^= 0x40;
  WriteFileBytes(path, bytes);

  auto loaded = graph::ReadBinaryMmap(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checksum mismatch"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(GraphMmapTest, RejectsCorruptHeaderPage) {
  WebGraph g = SampleGraph();
  const std::string path = TempPath("bad_header.smwg");
  ASSERT_TRUE(graph::WriteBinaryV22(g, path).ok());

  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes[16] ^= 0x01;  // num_nodes field, checksum left stale
  WriteFileBytes(path, bytes);

  auto loaded = graph::ReadBinaryMmap(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("header page checksum"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(GraphMmapTest, RejectsHeaderClaimingMoreDataThanFileHolds) {
  WebGraph g = SampleGraph();
  const std::string path = TempPath("oversize_claim.smwg");
  ASSERT_TRUE(graph::WriteBinaryV22(g, path).ok());

  std::vector<uint8_t> bytes = ReadFileBytes(path);
  // Claim an edge count no section in this file could hold; with the
  // header checksum repaired, the size sanity gate is the one that fires.
  const uint64_t absurd_edges = bytes.size();
  std::memcpy(bytes.data() + 24, &absurd_edges, 8);
  RepairHeaderChecksum(&bytes);
  WriteFileBytes(path, bytes);

  auto loaded = graph::ReadBinaryMmap(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("shorter than header claims"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(GraphMmapTest, HeapReaderAlsoRejectsCorruptPagedFiles) {
  // The heap path runs full validation; it must reject the same damage.
  WebGraph g = SampleGraph();
  const std::string path = TempPath("bitflip_heap.smwg");
  ASSERT_TRUE(graph::WriteBinaryV22(g, path).ok());

  std::vector<uint8_t> bytes = ReadFileBytes(path);
  auto [offset, length] = SectionGeometry(bytes, 3);  // sources
  ASSERT_GT(length, 0u);
  bytes[offset + length / 3] ^= 0x10;
  WriteFileBytes(path, bytes);

  auto loaded = graph::ReadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checksum mismatch"),
            std::string::npos)
      << loaded.status().ToString();
}

}  // namespace
}  // namespace spammass
