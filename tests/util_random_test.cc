// Tests of the deterministic PRNG and its distributions.

#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace spammass {
namespace {

using util::Rng;
using util::SampleWithoutReplacement;
using util::ZipfSampler;

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(RngTest, UniformIndexBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformIndex(13), 13u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, DiscretePowerLawRespectsXmin) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.DiscretePowerLaw(5, 2.0), 5u);
  }
}

TEST(RngTest, DiscretePowerLawIsHeavyTailed) {
  Rng rng(23);
  const int n = 200000;
  int small = 0, large = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t x = rng.DiscretePowerLaw(1, 2.5);
    if (x == 1) ++small;
    if (x >= 10) ++large;
  }
  // For alpha = 2.5, P(X = 1) ≈ 1 − 2^(-1.5) ≈ 0.65 and P(X >= 10) is a
  // few percent — verify both qualitative features.
  EXPECT_GT(static_cast<double>(small) / n, 0.5);
  EXPECT_GT(large, 0);
  EXPECT_LT(static_cast<double>(large) / n, 0.10);
}

TEST(ZipfSamplerTest, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

TEST(ZipfSamplerTest, RanksWithinBounds) {
  ZipfSampler zipf(1000, 0.9);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(&rng), 1000u);
}

TEST(ZipfSamplerTest, LowRanksDominare) {
  ZipfSampler zipf(10000, 1.0);
  Rng rng(3);
  const int n = 100000;
  int top10 = 0;
  for (int i = 0; i < n; ++i) top10 += (zipf.Sample(&rng) < 10);
  // With s = 1 and N = 10⁴, the top 10 ranks carry about
  // H(10)/H(10000) ≈ 2.93/9.79 ≈ 30% of the probability mass.
  EXPECT_GT(static_cast<double>(top10) / n, 0.2);
  EXPECT_LT(static_cast<double>(top10) / n, 0.4);
}

TEST(ZipfSamplerTest, FrequencyRatioMatchesExponent) {
  // P(rank 0) / P(rank 1) should be close to 2^s.
  const double s = 1.2;
  ZipfSampler zipf(1000, s);
  Rng rng(4);
  const int n = 400000;
  int r0 = 0, r1 = 0;
  for (int i = 0; i < n; ++i) {
    uint64_t r = zipf.Sample(&rng);
    if (r == 0) ++r0;
    if (r == 1) ++r1;
  }
  ASSERT_GT(r1, 0);
  EXPECT_NEAR(static_cast<double>(r0) / r1, std::pow(2.0, s), 0.2);
}

TEST(SampleWithoutReplacementTest, ExactSizeAndUniqueness) {
  Rng rng(6);
  auto s = SampleWithoutReplacement(100, 30, &rng);
  EXPECT_EQ(s.size(), 30u);
  std::set<uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (uint64_t x : s) EXPECT_LT(x, 100u);
}

TEST(SampleWithoutReplacementTest, FullSample) {
  Rng rng(8);
  auto s = SampleWithoutReplacement(10, 10, &rng);
  EXPECT_EQ(s.size(), 10u);
}

TEST(SampleWithoutReplacementTest, EmptySample) {
  Rng rng(8);
  EXPECT_TRUE(SampleWithoutReplacement(10, 0, &rng).empty());
  EXPECT_TRUE(SampleWithoutReplacement(0, 0, &rng).empty());
}

TEST(SampleWithoutReplacementTest, ApproximatelyUniform) {
  Rng rng(10);
  std::vector<int> hits(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (uint64_t x : SampleWithoutReplacement(20, 5, &rng)) hits[x]++;
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.25, 0.03);
  }
}

TEST(ShuffleTest, PermutesAllElements) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  util::Shuffle(&v, &rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

}  // namespace
}  // namespace spammass
