// Tests of the streaming checksums backing the v2 binary graph container:
// the canonical byte-serial FNV-1a and the 8-lane interleaved variant.

#include "util/checksum.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

namespace spammass {
namespace {

using util::Fnv1a64;
using util::Fnv1a64Digest;
using util::Fnv1a64x8;
using util::Fnv1a64x8Digest;

TEST(Fnv1a64Test, KnownVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64Digest("", 0), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64Digest("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64Digest("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Fnv1a64Test, ChunkingInvariant) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint64_t whole = Fnv1a64Digest(data.data(), data.size());
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    Fnv1a64 h;
    h.Update(data.data(), cut);
    h.Update(data.data() + cut, data.size() - cut);
    EXPECT_EQ(h.digest(), whole) << "cut at " << cut;
  }
}

TEST(Fnv1a64x8Test, ChunkingInvariant) {
  // Blocks are cut at absolute stream positions, so the digest must not
  // change however Update calls slice the stream — including slices that
  // leave partial 64-byte blocks buffered between calls.
  std::string data;
  for (int i = 0; i < 1000; ++i) data += static_cast<char>(i * 37 + 11);
  const uint64_t whole = Fnv1a64x8Digest(data.data(), data.size());
  for (size_t cut1 : {0u, 1u, 3u, 7u, 8u, 9u, 13u, 64u, 999u, 1000u}) {
    for (size_t cut2 : {0u, 2u, 5u, 8u, 17u}) {
      const size_t a = cut1;
      const size_t b = std::min(data.size(), cut1 + cut2);
      Fnv1a64x8 h;
      h.Update(data.data(), a);
      h.Update(data.data() + a, b - a);
      h.Update(data.data() + b, data.size() - b);
      EXPECT_EQ(h.digest(), whole) << "cuts at " << a << ", " << b;
    }
  }
}

TEST(Fnv1a64x8Test, DetectsSingleBitFlips) {
  std::string data(4096, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 131 + 7);
  }
  const uint64_t clean = Fnv1a64x8Digest(data.data(), data.size());
  for (size_t i : {0u, 1u, 7u, 8u, 100u, 4095u}) {
    std::string corrupt = data;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_NE(Fnv1a64x8Digest(corrupt.data(), corrupt.size()), clean)
        << "flip at byte " << i;
  }
}

TEST(Fnv1a64x8Test, LengthMattersEvenForZeroBytes) {
  // The digest folds the total byte count, so streams of zeros of
  // different lengths must not collide (per-lane FNV-1a maps a 0x00 byte
  // to state * prime, which never revisits the offset basis, but the
  // explicit length fold makes the property unconditional).
  const char zeros[32] = {};
  EXPECT_NE(Fnv1a64x8Digest(zeros, 8), Fnv1a64x8Digest(zeros, 16));
  EXPECT_NE(Fnv1a64x8Digest(zeros, 0), Fnv1a64x8Digest(zeros, 8));
}

TEST(Fnv1a64x8Test, SwappedBlocksDetected) {
  // Lane independence must not make the hash blind to reordering whole
  // words: swapped words either land in different lanes or (for short
  // streams like these) change the byte-serial tail fold.
  std::string a = "AAAAAAAABBBBBBBB";
  std::string b = "BBBBBBBBAAAAAAAA";
  EXPECT_NE(Fnv1a64x8Digest(a.data(), a.size()),
            Fnv1a64x8Digest(b.data(), b.size()));
}

}  // namespace
}  // namespace spammass
