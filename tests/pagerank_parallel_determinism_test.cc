// TSan-targeted test: the multi-threaded solvers must produce bit-identical
// output to the single-threaded path — scores, residual histories, AND
// iteration counts. Each Jacobi output entry depends only on the previous
// iterate, so sharding rows across threads must not change a single bit;
// the reductions (residuals, dangling sums, power-iteration norms) go
// through the deterministic chunked scheme of pagerank/kernel.h whose
// decomposition depends only on the element count, never the thread count.
// Any discrepancy means a data race or a floating-point reassociation snuck
// into the parallel path. The CI thread-sanitizer job runs this suite
// together with the thread-pool stress tests.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/solver.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::SolverOptions;

/// Pseudo-random synthetic graph with dangling nodes (ids near n have no
/// outlinks with high probability), so both dangling policies get coverage.
WebGraph MakeSyntheticGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b(n);
  for (uint32_t e = 0; e < edges; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(n * 3 / 4));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

/// Exact bitwise equality, not EXPECT_DOUBLE_EQ's 4-ulp band.
void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t abits;
    uint64_t bbits;
    std::memcpy(&abits, &a[i], sizeof(abits));
    std::memcpy(&bbits, &b[i], sizeof(bbits));
    ASSERT_EQ(abits, bbits) << "scores diverge at node " << i << ": " << a[i]
                            << " vs " << b[i];
  }
}

class ParallelJacobiDeterminismTest
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParallelJacobiDeterminismTest, BitIdenticalToSerialFixedIterations) {
  WebGraph g = MakeSyntheticGraph(800, 4000, /*seed=*/77);
  // tolerance = 0 pins the iteration count: both runs execute exactly
  // max_iterations sweeps, so the comparison cannot be masked by an early
  // convergence exit.
  SolverOptions serial;
  serial.tolerance = 0.0;
  serial.max_iterations = 60;
  SolverOptions parallel = serial;
  parallel.num_threads = GetParam();

  for (auto policy : {pagerank::DanglingPolicy::kLeak,
                      pagerank::DanglingPolicy::kRedistributeToJump}) {
    serial.dangling = parallel.dangling = policy;
    auto a = pagerank::ComputeUniformPageRank(g, serial);
    auto b = pagerank::ComputeUniformPageRank(g, parallel);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a.value().iterations, b.value().iterations);
    ExpectBitIdentical(a.value().scores, b.value().scores);
  }
}

TEST_P(ParallelJacobiDeterminismTest, BitIdenticalToSerialConverged) {
  WebGraph g = MakeSyntheticGraph(500, 2500, /*seed=*/33);
  SolverOptions serial;
  serial.tolerance = 1e-13;
  serial.max_iterations = 2000;
  SolverOptions parallel = serial;
  parallel.num_threads = GetParam();

  auto a = pagerank::ComputeUniformPageRank(g, serial);
  auto b = pagerank::ComputeUniformPageRank(g, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a.value().converged);
  ASSERT_TRUE(b.value().converged);
  ASSERT_EQ(a.value().iterations, b.value().iterations);
  ExpectBitIdentical(a.value().scores, b.value().scores);
}

TEST_P(ParallelJacobiDeterminismTest, CoreJumpVectorBitIdentical) {
  WebGraph g = MakeSyntheticGraph(600, 3000, /*seed=*/55);
  std::vector<NodeId> core = {1, 5, 17, 100, 311};
  pagerank::JumpVector w =
      pagerank::JumpVector::ScaledCore(g.num_nodes(), core, /*gamma=*/0.85);

  SolverOptions serial;
  serial.tolerance = 0.0;
  serial.max_iterations = 40;
  SolverOptions parallel = serial;
  parallel.num_threads = GetParam();

  auto a = pagerank::ComputePageRank(g, w, serial);
  auto b = pagerank::ComputePageRank(g, w, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBitIdentical(a.value().scores, b.value().scores);
}

TEST_P(ParallelJacobiDeterminismTest, ResidualHistoryBitIdentical) {
  // Residuals feed the convergence test, so bit-identical scores with
  // drifting residuals would still let iteration counts diverge across
  // thread counts. The deterministic chunked reduction pins both.
  WebGraph g = MakeSyntheticGraph(700, 3500, /*seed=*/91);
  SolverOptions serial;
  serial.tolerance = 1e-12;
  serial.max_iterations = 2000;
  serial.track_residuals = true;
  SolverOptions parallel = serial;
  parallel.num_threads = GetParam();

  auto a = pagerank::ComputeUniformPageRank(g, serial);
  auto b = pagerank::ComputeUniformPageRank(g, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().iterations, b.value().iterations);
  ExpectBitIdentical(a.value().residual_history,
                     b.value().residual_history);
  ExpectBitIdentical(a.value().scores, b.value().scores);
}

TEST_P(ParallelJacobiDeterminismTest, MultiVectorSolveBitIdentical) {
  WebGraph g = MakeSyntheticGraph(600, 3000, /*seed=*/71);
  std::vector<pagerank::JumpVector> jumps;
  jumps.push_back(pagerank::JumpVector::Uniform(g.num_nodes()));
  jumps.push_back(pagerank::JumpVector::ScaledCore(
      g.num_nodes(), {3, 11, 42, 250}, /*gamma=*/0.85));

  SolverOptions serial;
  serial.tolerance = 1e-12;
  serial.max_iterations = 2000;
  SolverOptions parallel = serial;
  parallel.num_threads = GetParam();

  auto a = pagerank::ComputePageRankMulti(g, jumps, serial);
  auto b = pagerank::ComputePageRankMulti(g, jumps, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t j = 0; j < jumps.size(); ++j) {
    ASSERT_EQ(a.value()[j].iterations, b.value()[j].iterations);
    ExpectBitIdentical(a.value()[j].scores, b.value()[j].scores);
  }
}

TEST_P(ParallelJacobiDeterminismTest, PowerIterationBitIdentical) {
  // Power iteration shares the deterministic kernels (sweep, dangling sum,
  // norm guard, residual), so it carries the same guarantee.
  WebGraph g = MakeSyntheticGraph(500, 2500, /*seed=*/83);
  SolverOptions serial;
  serial.method = pagerank::Method::kPowerIteration;
  serial.tolerance = 1e-12;
  serial.max_iterations = 2000;
  SolverOptions parallel = serial;
  parallel.num_threads = GetParam();

  auto a = pagerank::ComputeUniformPageRank(g, serial);
  auto b = pagerank::ComputeUniformPageRank(g, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().iterations, b.value().iterations);
  ExpectBitIdentical(a.value().scores, b.value().scores);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelJacobiDeterminismTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace spammass
