// The sharded Jacobi sweep's core contract: scores, residuals, and
// iteration counts are BIT-IDENTICAL to the unsharded kernel for every
// shard count and every thread count. The suite is named ParallelJacobi*
// so the ThreadSanitizer CI job's test filter picks it up — the boundary
// exchange plus per-shard sweeps over one shared pool is exactly the kind
// of code TSan should watch.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/solver.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::ComputePageRank;
using pagerank::ComputePageRankMulti;
using pagerank::JumpVector;
using pagerank::PageRankResult;
using pagerank::SolverOptions;
using pagerank::SolverWorkspace;

/// Random graph with sources skewed to the lower half, so the upper half
/// is rich in dangling nodes and shard boundaries cut real edge traffic.
WebGraph MakeGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b(n);
  for (uint32_t e = 0; e < edges; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(n / 2));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

SolverOptions JacobiOptions() {
  SolverOptions opt;
  opt.method = pagerank::Method::kJacobi;
  opt.tolerance = 1e-13;
  opt.track_residuals = true;
  return opt;
}

/// Bitwise comparison — EXPECT_EQ on doubles, no tolerance anywhere.
void ExpectBitIdentical(const PageRankResult& a, const PageRankResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.iterations, b.iterations) << label;
  EXPECT_EQ(a.converged, b.converged) << label;
  EXPECT_EQ(a.residual, b.residual) << label;
  ASSERT_EQ(a.scores.size(), b.scores.size()) << label;
  for (size_t i = 0; i < a.scores.size(); ++i) {
    ASSERT_EQ(a.scores[i], b.scores[i]) << label << " node " << i;
  }
  ASSERT_EQ(a.residual_history.size(), b.residual_history.size()) << label;
  for (size_t i = 0; i < a.residual_history.size(); ++i) {
    ASSERT_EQ(a.residual_history[i], b.residual_history[i])
        << label << " sweep " << i;
  }
}

TEST(ParallelJacobiShardTest, BitIdenticalAcrossShardAndThreadCounts) {
  WebGraph g = MakeGraph(800, 5000, /*seed=*/23);
  SolverOptions base = JacobiOptions();
  auto reference = pagerank::ComputeUniformPageRank(g, base);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference.value().converged);

  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (uint32_t threads : {1u, 4u}) {
      SolverOptions opt = base;
      opt.shards = shards;
      opt.num_threads = threads;
      auto sharded = pagerank::ComputeUniformPageRank(g, opt);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ExpectBitIdentical(reference.value(), sharded.value(),
                         "shards=" + std::to_string(shards) +
                             " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelJacobiShardTest, BitIdenticalUnderRedistributePolicy) {
  WebGraph g = MakeGraph(600, 3500, /*seed=*/29);
  SolverOptions base = JacobiOptions();
  base.dangling = pagerank::DanglingPolicy::kRedistributeToJump;
  auto reference = pagerank::ComputeUniformPageRank(g, base);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  SolverOptions opt = base;
  opt.shards = 4;
  opt.num_threads = 4;
  auto sharded = pagerank::ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectBitIdentical(reference.value(), sharded.value(), "redistribute");
}

TEST(ParallelJacobiShardTest, MultiRhsShardedMatchesUnsharded) {
  // The spam-mass workload shape: fused multi-RHS lanes through one CSR
  // traversal, now sharded. Each lane must stay bit-identical.
  WebGraph g = MakeGraph(700, 4200, /*seed=*/31);
  std::vector<JumpVector> jumps;
  jumps.push_back(JumpVector::Uniform(g.num_nodes()));
  jumps.push_back(JumpVector::Core(g.num_nodes(), {1, 5, 9, 44, 123}));
  jumps.push_back(JumpVector::SingleNode(g.num_nodes(), 17, 1.0));

  SolverOptions base = JacobiOptions();
  auto reference = ComputePageRankMulti(g, jumps, base);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  SolverOptions opt = base;
  opt.shards = 4;
  opt.num_threads = 4;
  auto sharded = ComputePageRankMulti(g, jumps, opt);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_EQ(sharded.value().size(), reference.value().size());
  for (size_t j = 0; j < jumps.size(); ++j) {
    ExpectBitIdentical(reference.value()[j], sharded.value()[j],
                       "lane " + std::to_string(j));
  }
}

TEST(ParallelJacobiShardTest, WorkspaceRebuildsRuntimeOnShardCountChange) {
  // One workspace, alternating shard counts: the cached ShardRuntime is
  // rebuilt on each change and every solve still matches a fresh one.
  WebGraph g = MakeGraph(500, 3000, /*seed=*/37);
  SolverOptions base = JacobiOptions();
  auto reference = pagerank::ComputeUniformPageRank(g, base);
  ASSERT_TRUE(reference.ok());

  SolverWorkspace ws;
  const JumpVector uniform = JumpVector::Uniform(g.num_nodes());
  for (uint32_t shards : {2u, 8u, 2u}) {
    SolverOptions opt = base;
    opt.shards = shards;
    opt.num_threads = 4;
    auto sharded = ComputePageRank(g, uniform, opt, &ws);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ExpectBitIdentical(reference.value(), sharded.value(),
                       "reused ws shards=" + std::to_string(shards));
  }
}

TEST(ParallelJacobiShardTest, ShardCountBeyondGraphSizeStillExact) {
  // More shards than aligned cut points: the plan clamps, results hold.
  WebGraph g = MakeGraph(64, 300, /*seed=*/41);
  SolverOptions base = JacobiOptions();
  auto reference = pagerank::ComputeUniformPageRank(g, base);
  ASSERT_TRUE(reference.ok());

  SolverOptions opt = base;
  opt.shards = 8;
  auto sharded = pagerank::ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectBitIdentical(reference.value(), sharded.value(), "tiny graph");
}

TEST(ParallelJacobiShardTest, GaussSeidelIgnoresShards) {
  // Like num_threads, shards is a no-op for the sequential sweeps.
  WebGraph g = MakeGraph(400, 2500, /*seed=*/43);
  SolverOptions opt = JacobiOptions();
  opt.method = pagerank::Method::kGaussSeidel;
  auto plain = pagerank::ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  opt.shards = 8;
  auto sharded = pagerank::ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ExpectBitIdentical(plain.value(), sharded.value(), "gauss-seidel");
}

TEST(ParallelJacobiShardTest, RejectsIncompatibleOptions) {
  // shards > 1 promises bit-identity, so it only composes with the
  // bit-exact reference configuration.
  WebGraph g = MakeGraph(100, 500, /*seed=*/47);

  SolverOptions opt = JacobiOptions();
  opt.shards = 0;
  EXPECT_FALSE(pagerank::ComputeUniformPageRank(g, opt).ok());

  opt = JacobiOptions();
  opt.shards = 2;
  opt.method = pagerank::Method::kPowerIteration;
  EXPECT_FALSE(pagerank::ComputeUniformPageRank(g, opt).ok());

  opt = JacobiOptions();
  opt.shards = 2;
  opt.simd = pagerank::SimdPolicy::kAuto;
  EXPECT_FALSE(pagerank::ComputeUniformPageRank(g, opt).ok());

  opt = JacobiOptions();
  opt.shards = 2;
  opt.precision = pagerank::SweepPrecision::kMixedF32;
  EXPECT_FALSE(pagerank::ComputeUniformPageRank(g, opt).ok());

  opt = JacobiOptions();
  opt.shards = 2;
  opt.compressed_gather = true;
  g.BuildCompressedInAdjacency();
  EXPECT_FALSE(pagerank::ComputeUniformPageRank(g, opt).ok());
}

}  // namespace
}  // namespace spammass
