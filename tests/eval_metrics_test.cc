// Tests of ROC / AUC / precision-recall metrics.

#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace spammass {
namespace {

using eval::ComputeAuc;
using eval::ComputePrCurve;
using eval::ComputeRoc;
using eval::ScoredExample;
using eval::ThresholdForPrecision;

std::vector<ScoredExample> PerfectSeparation() {
  return {{0.9, true}, {0.8, true}, {0.3, false}, {0.1, false}};
}

TEST(MetricsTest, PerfectSeparationAucIsOne) {
  EXPECT_NEAR(ComputeAuc(PerfectSeparation()), 1.0, 1e-12);
}

TEST(MetricsTest, ReversedSeparationAucIsZero) {
  std::vector<ScoredExample> reversed = {
      {0.9, false}, {0.8, false}, {0.3, true}, {0.1, true}};
  EXPECT_NEAR(ComputeAuc(reversed), 0.0, 1e-12);
}

TEST(MetricsTest, RandomScoresAucNearHalf) {
  util::Rng rng(5);
  std::vector<ScoredExample> examples;
  for (int i = 0; i < 20000; ++i) {
    examples.push_back({rng.Uniform01(), rng.Bernoulli(0.3)});
  }
  EXPECT_NEAR(ComputeAuc(examples), 0.5, 0.02);
}

TEST(MetricsTest, EmptyInputAucIsHalf) {
  EXPECT_EQ(ComputeAuc({}), 0.5);
}

TEST(MetricsTest, TiedScoresCountHalf) {
  // One positive and one negative share the same score: AUC = 0.5.
  std::vector<ScoredExample> tied = {{0.5, true}, {0.5, false}};
  EXPECT_NEAR(ComputeAuc(tied), 0.5, 1e-12);
}

TEST(MetricsTest, RocEndpointsAndMonotonicity) {
  auto curve = ComputeRoc(PerfectSeparation());
  ASSERT_FALSE(curve.empty());
  double prev_tpr = 0, prev_fpr = 0;
  for (const auto& point : curve) {
    EXPECT_GE(point.true_positive_rate, prev_tpr);
    EXPECT_GE(point.false_positive_rate, prev_fpr);
    prev_tpr = point.true_positive_rate;
    prev_fpr = point.false_positive_rate;
  }
  EXPECT_NEAR(curve.back().true_positive_rate, 1.0, 1e-12);
  EXPECT_NEAR(curve.back().false_positive_rate, 1.0, 1e-12);
}

TEST(MetricsTest, RocGroupsTies) {
  std::vector<ScoredExample> examples = {
      {0.9, true}, {0.5, true}, {0.5, false}, {0.5, false}, {0.1, false}};
  auto curve = ComputeRoc(examples);
  // Thresholds: 0.9, 0.5, 0.1 — one point per distinct score.
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NEAR(curve[1].true_positive_rate, 1.0, 1e-12);
  EXPECT_NEAR(curve[1].false_positive_rate, 2.0 / 3, 1e-12);
}

TEST(MetricsTest, PrCurveValues) {
  auto curve = ComputePrCurve(PerfectSeparation());
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_NEAR(curve[0].precision, 1.0, 1e-12);
  EXPECT_NEAR(curve[0].recall, 0.5, 1e-12);
  EXPECT_EQ(curve[0].flagged, 1u);
  EXPECT_NEAR(curve[1].precision, 1.0, 1e-12);
  EXPECT_NEAR(curve[1].recall, 1.0, 1e-12);
  EXPECT_NEAR(curve[3].precision, 0.5, 1e-12);
  EXPECT_NEAR(curve[3].recall, 1.0, 1e-12);
}

TEST(MetricsTest, ThresholdForPrecisionPicksMaxRecall) {
  auto point = ThresholdForPrecision(PerfectSeparation(), 1.0);
  EXPECT_NEAR(point.precision, 1.0, 1e-12);
  EXPECT_NEAR(point.recall, 1.0, 1e-12);  // threshold 0.8, not 0.9
  EXPECT_NEAR(point.threshold, 0.8, 1e-12);
}

TEST(MetricsTest, ThresholdForPrecisionFallsBackToBest) {
  std::vector<ScoredExample> noisy = {
      {0.9, true}, {0.8, false}, {0.7, true}, {0.1, false}};
  auto point = ThresholdForPrecision(noisy, 0.99);
  // Unattainable: best available precision is 1.0 at the top threshold...
  // top point has precision 1.0 (1 of 1), so the target IS attainable.
  EXPECT_NEAR(point.precision, 1.0, 1e-12);
  EXPECT_NEAR(point.threshold, 0.9, 1e-12);

  std::vector<ScoredExample> hopeless = {{0.9, false}, {0.5, true}};
  auto fallback = ThresholdForPrecision(hopeless, 0.99);
  EXPECT_NEAR(fallback.precision, 0.5, 1e-12);  // best of {0, 0.5}
}

}  // namespace
}  // namespace spammass
