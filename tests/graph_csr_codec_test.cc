// Delta+varint successor-list codec: round trips over random and
// adversarial adjacency shapes (empty rows, singletons, maximum deltas),
// hostile-input rejection (truncation, trailing bytes, out-of-range ids,
// overlong varints), and the format-2.1 container round trip — a binary
// file written with the compressed section must load into a graph whose
// structure AND compressed adjacency equal the plain-file load.

#include "graph/csr_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/web_graph.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::CompressedAdjacency;
using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

/// Encodes `rows` (each strictly ascending) via offsets+flat arrays. The
/// encoder's row count is rows.size(); the id bound is the caller's
/// num_nodes at decode time.
CompressedAdjacency EncodeRows(const std::vector<std::vector<NodeId>>& rows) {
  std::vector<uint64_t> offsets{0};
  std::vector<NodeId> flat;
  for (const auto& row : rows) {
    flat.insert(flat.end(), row.begin(), row.end());
    offsets.push_back(flat.size());
  }
  return graph::EncodeAdjacency(static_cast<NodeId>(rows.size()), offsets,
                                flat);
}

void ExpectRowsDecode(const CompressedAdjacency& compressed, NodeId num_nodes,
                      const std::vector<std::vector<NodeId>>& rows) {
  std::vector<NodeId> decoded;
  for (NodeId x = 0; x < rows.size(); ++x) {
    auto status = graph::DecodeRow(
        compressed, x, static_cast<uint32_t>(rows[x].size()), num_nodes,
        &decoded);
    ASSERT_TRUE(status.ok()) << "row " << x << ": " << status.ToString();
    EXPECT_EQ(decoded, rows[x]) << "row " << x;
  }
}

TEST(CsrCodecTest, RoundTripsRandomAdjacency) {
  constexpr NodeId kNodes = 500;
  util::Rng rng(17);
  std::vector<std::vector<NodeId>> rows(kNodes);
  for (auto& row : rows) {
    const size_t degree = rng.UniformIndex(20);
    for (size_t i = 0; i < degree; ++i) {
      row.push_back(static_cast<NodeId>(rng.UniformIndex(kNodes)));
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  CompressedAdjacency compressed = EncodeRows(rows);
  EXPECT_EQ(compressed.num_rows(), kNodes);
  ExpectRowsDecode(compressed, kNodes, rows);
}

TEST(CsrCodecTest, RoundTripsAdversarialShapes) {
  // All-empty rows, singletons at both extremes, a full row, and a
  // maximum-gap row all in one adjacency.
  constexpr NodeId kNodes = 1 << 20;
  std::vector<std::vector<NodeId>> rows;
  rows.push_back({});                       // empty
  rows.push_back({0});                      // smallest singleton
  rows.push_back({kNodes - 1});             // largest gap from prev=0
  rows.push_back({0, kNodes - 1});          // both extremes in one row
  rows.push_back({});                       // empty between non-empties
  rows.push_back({1, 2, 3, 4, 5});          // dense run (gaps of zero)
  CompressedAdjacency compressed = EncodeRows(rows);
  ExpectRowsDecode(compressed, kNodes, rows);

  // An empty adjacency is still a valid object.
  CompressedAdjacency empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.num_rows(), 0u);
}

TEST(CsrCodecTest, GraphBuiltCompressionValidates) {
  util::Rng rng(23);
  GraphBuilder b(300);
  for (int e = 0; e < 2000; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(300));
    auto v = static_cast<NodeId>(rng.UniformIndex(300));
    if (u != v) b.AddEdge(u, v);
  }
  WebGraph g = b.Build();
  ASSERT_FALSE(g.has_compressed_in());
  g.BuildCompressedInAdjacency();
  ASSERT_TRUE(g.has_compressed_in());

  auto status = graph::ValidateCompressedAdjacency(
      g.compressed_in(), g.num_nodes(), g.InOffsets(), g.Sources());
  EXPECT_TRUE(status.ok()) << status.ToString();

  // Every row decodes to exactly the plain in-neighbor list.
  std::vector<NodeId> decoded;
  for (NodeId y = 0; y < g.num_nodes(); ++y) {
    auto row = g.InNeighbors(y);
    ASSERT_TRUE(graph::DecodeRow(g.compressed_in(), y,
                                 static_cast<uint32_t>(row.size()),
                                 g.num_nodes(), &decoded)
                    .ok());
    ASSERT_EQ(decoded.size(), row.size());
    EXPECT_TRUE(std::equal(row.begin(), row.end(), decoded.begin()));
  }
}

TEST(CsrCodecTest, RejectsHostileInput) {
  constexpr NodeId kNodes = 1000;
  std::vector<std::vector<NodeId>> rows = {{3, 700, 999}};
  CompressedAdjacency compressed = EncodeRows(rows);
  std::vector<NodeId> decoded;

  // Out-of-range row index.
  EXPECT_FALSE(graph::DecodeRow(compressed, 1, 3, kNodes, &decoded).ok());

  // Degree larger than the encoded row: the decoder runs off the frame.
  EXPECT_FALSE(graph::DecodeRow(compressed, 0, 4, kNodes, &decoded).ok());

  // Degree smaller than the encoded row: trailing bytes must be rejected.
  EXPECT_FALSE(graph::DecodeRow(compressed, 0, 2, kNodes, &decoded).ok());

  // Truncated byte stream (continuation bit points past the end).
  CompressedAdjacency truncated = compressed;
  truncated.bytes.pop_back();
  truncated.byte_offsets.back() = truncated.bytes.size();
  EXPECT_FALSE(graph::DecodeRow(truncated, 0, 3, kNodes, &decoded).ok());

  // Ids at or past num_nodes are rejected even when well-formed varints.
  EXPECT_FALSE(graph::DecodeRow(compressed, 0, 3, /*num_nodes=*/700,
                                &decoded)
                   .ok());

  // A frame whose offsets lie outside the byte blob.
  CompressedAdjacency bad_frame = compressed;
  bad_frame.byte_offsets.back() = bad_frame.bytes.size() + 10;
  EXPECT_FALSE(graph::DecodeRow(bad_frame, 0, 3, kNodes, &decoded).ok());

  // An overlong varint (> 5 bytes of continuation) never decodes.
  CompressedAdjacency overlong;
  overlong.bytes.assign({0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01});
  overlong.byte_offsets = {0, overlong.bytes.size()};
  EXPECT_FALSE(graph::DecodeRow(overlong, 0, 1, kNodes, &decoded).ok());
}

TEST(CsrCodecTest, ValidateCatchesMismatches) {
  constexpr NodeId kNodes = 100;
  std::vector<std::vector<NodeId>> rows(kNodes);
  rows[5] = {1, 7, 50};
  rows[99] = {0, 99};
  CompressedAdjacency compressed = EncodeRows(rows);

  std::vector<uint64_t> offsets{0};
  std::vector<NodeId> flat;
  for (const auto& row : rows) {
    flat.insert(flat.end(), row.begin(), row.end());
    offsets.push_back(flat.size());
  }
  EXPECT_TRUE(graph::ValidateCompressedAdjacency(compressed, kNodes, offsets,
                                                 flat)
                  .ok());

  // A single flipped id is caught.
  std::vector<NodeId> tampered = flat;
  tampered[1] = 8;
  EXPECT_FALSE(graph::ValidateCompressedAdjacency(compressed, kNodes, offsets,
                                                  tampered)
                   .ok());

  // Wrong row count is caught.
  EXPECT_FALSE(graph::ValidateCompressedAdjacency(compressed, kNodes - 1,
                                                  offsets, flat)
                   .ok());
}

class CsrCodecIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  WebGraph SampleGraph(bool with_names) {
    util::Rng rng(31);
    GraphBuilder b(200);
    for (int e = 0; e < 900; ++e) {
      auto u = static_cast<NodeId>(rng.UniformIndex(200));
      auto v = static_cast<NodeId>(rng.UniformIndex(200));
      if (u != v) b.AddEdge(u, v);
    }
    WebGraph g = b.Build();
    if (with_names) {
      std::vector<std::string> names(g.num_nodes());
      for (NodeId x = 0; x < g.num_nodes(); ++x) {
        names[x] = "host-" + std::to_string(x) + ".example";
      }
      g.set_host_names(std::move(names));
    }
    return g;
  }
};

TEST_F(CsrCodecIoTest, CompressedFileLoadsEquivalentToPlain) {
  for (bool with_names : {false, true}) {
    WebGraph plain = SampleGraph(with_names);
    WebGraph compressed_graph = SampleGraph(with_names);
    compressed_graph.BuildCompressedInAdjacency();

    const std::string plain_path =
        TempPath(with_names ? "plain_named.bin" : "plain.bin");
    const std::string comp_path =
        TempPath(with_names ? "comp_named.bin" : "comp.bin");
    ASSERT_TRUE(graph::WriteBinary(plain, plain_path).ok());
    ASSERT_TRUE(graph::WriteBinary(compressed_graph, comp_path).ok());

    auto from_plain = graph::ReadBinary(plain_path);
    auto from_comp = graph::ReadBinary(comp_path);
    ASSERT_TRUE(from_plain.ok()) << from_plain.status().ToString();
    ASSERT_TRUE(from_comp.ok()) << from_comp.status().ToString();

    const WebGraph& a = from_plain.value();
    const WebGraph& b = from_comp.value();
    EXPECT_FALSE(a.has_compressed_in());
    EXPECT_TRUE(b.has_compressed_in());
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (NodeId x = 0; x < a.num_nodes(); ++x) {
      auto oa = a.OutNeighbors(x);
      auto ob = b.OutNeighbors(x);
      ASSERT_EQ(oa.size(), ob.size());
      EXPECT_TRUE(std::equal(oa.begin(), oa.end(), ob.begin()));
      auto ia = a.InNeighbors(x);
      auto ib = b.InNeighbors(x);
      ASSERT_EQ(ia.size(), ib.size());
      EXPECT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()));
      if (with_names) EXPECT_EQ(a.HostName(x), b.HostName(x));
    }
    // The loaded compressed section checks out against the loaded CSR.
    EXPECT_TRUE(graph::ValidateCompressedAdjacency(
                    b.compressed_in(), b.num_nodes(), b.InOffsets(),
                    b.Sources())
                    .ok());
  }
}

TEST_F(CsrCodecIoTest, CompressedRoundTripPreservesBlobExactly) {
  WebGraph g = SampleGraph(/*with_names=*/false);
  g.BuildCompressedInAdjacency();
  const std::string path = TempPath("blob.bin");
  ASSERT_TRUE(graph::WriteBinary(g, path).ok());
  auto loaded = graph::ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().has_compressed_in());
  EXPECT_EQ(loaded.value().compressed_in().bytes, g.compressed_in().bytes);
  EXPECT_EQ(loaded.value().compressed_in().byte_offsets,
            g.compressed_in().byte_offsets);
}

TEST_F(CsrCodecIoTest, TruncatedCompressedSectionRejected) {
  WebGraph g = SampleGraph(/*with_names=*/false);
  g.BuildCompressedInAdjacency();
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(graph::WriteBinary(g, path).ok());

  std::ifstream in(path, std::ios::binary);
  std::vector<char> contents((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(contents.size(), 16u);
  contents.resize(contents.size() - 8);
  const std::string cut_path = TempPath("trunc_cut.bin");
  {
    std::ofstream out(cut_path, std::ios::binary);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }
  EXPECT_FALSE(graph::ReadBinary(cut_path).ok());
}

}  // namespace
}  // namespace spammass
