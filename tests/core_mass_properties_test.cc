// Property-based tests of spam-mass invariants on randomized webs:
//   * partition identity: q^{V⁺} + q^{V⁻} = p (Section 3.3),
//   * relative mass never exceeds 1; equals 1 exactly for nodes the core
//     cannot reach,
//   * detector monotonicity in both thresholds,
//   * estimator exactness when the core is the full good set and jumps are
//     unscaled.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/spam_mass.h"
#include "pagerank/contribution.h"
#include "graph/graph_algorithms.h"
#include "graph/graph_builder.h"
#include "util/random.h"

namespace spammass {
namespace {

using core::LabelStore;
using core::MassEstimates;
using core::NodeLabel;
using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

struct RandomWeb {
  WebGraph graph;
  LabelStore labels;
};

/// Random graph with a random good/spam labeling.
RandomWeb MakeRandomWeb(uint32_t n, double mean_degree, double spam_fraction,
                        uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b(n);
  uint64_t edges = static_cast<uint64_t>(n * mean_degree);
  for (uint64_t e = 0; e < edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.UniformIndex(n));
    NodeId v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  RandomWeb web;
  web.graph = b.Build();
  web.labels = LabelStore(n);
  for (NodeId x = 0; x < n; ++x) {
    if (rng.Bernoulli(spam_fraction)) web.labels.Set(x, NodeLabel::kSpam);
  }
  return web;
}

pagerank::SolverOptions Precise() {
  pagerank::SolverOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 5000;
  return opt;
}

class MassPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MassPropertyTest, PartitionContributionsSumToPageRank) {
  RandomWeb web = MakeRandomWeb(60, 3.0, 0.3, GetParam());
  auto p = pagerank::ComputeUniformPageRank(web.graph, Precise());
  auto good = pagerank::ComputeSetContribution(web.graph,
                                               web.labels.GoodNodes(),
                                               Precise());
  auto spam = pagerank::ComputeSetContribution(web.graph,
                                               web.labels.SpamNodes(),
                                               Precise());
  ASSERT_TRUE(p.ok() && good.ok() && spam.ok());
  for (NodeId x = 0; x < web.graph.num_nodes(); ++x) {
    EXPECT_NEAR(good.value().scores[x] + spam.value().scores[x],
                p.value().scores[x], 1e-11);
  }
}

TEST_P(MassPropertyTest, RelativeMassBoundedAboveByOne) {
  RandomWeb web = MakeRandomWeb(80, 2.5, 0.3, GetParam() + 100);
  std::vector<NodeId> core;
  util::Rng rng(GetParam() + 200);
  for (NodeId x : web.labels.GoodNodes()) {
    if (rng.Bernoulli(0.3)) core.push_back(x);
  }
  if (core.empty()) core.push_back(web.labels.GoodNodes().front());
  core::SpamMassOptions options;
  options.solver = Precise();
  options.gamma = 0.7;
  auto est = core::EstimateSpamMass(web.graph, core, options);
  ASSERT_TRUE(est.ok());
  for (double m : est.value().relative_mass) {
    EXPECT_LE(m, 1.0 + 1e-12);
  }
}

TEST_P(MassPropertyTest, UnreachableNodesHaveRelativeMassOne) {
  RandomWeb web = MakeRandomWeb(50, 2.0, 0.3, GetParam() + 300);
  std::vector<NodeId> core = {0};
  core::SpamMassOptions options;
  options.solver = Precise();
  auto est = core::EstimateSpamMass(web.graph, core, options);
  ASSERT_TRUE(est.ok());
  auto reachable = graph::ReachableFrom(web.graph, core);
  for (NodeId x = 0; x < web.graph.num_nodes(); ++x) {
    if (!reachable[x]) {
      EXPECT_NEAR(est.value().relative_mass[x], 1.0, 1e-12) << "node " << x;
    }
  }
}

TEST_P(MassPropertyTest, PerfectUnscaledCoreRecoversActualMass) {
  // With Ṽ⁺ = V⁺ and the raw 1/n jump, p′ is exactly the good
  // contribution, so M̃ = M (Definition 3 becomes exact).
  RandomWeb web = MakeRandomWeb(40, 2.5, 0.35, GetParam() + 400);
  if (web.labels.GoodNodes().empty()) return;
  core::SpamMassOptions options;
  options.solver = Precise();
  options.scale_core_jump = false;
  auto est =
      core::EstimateSpamMass(web.graph, web.labels.GoodNodes(), options);
  auto actual =
      core::ComputeActualSpamMass(web.graph, web.labels, Precise());
  ASSERT_TRUE(est.ok() && actual.ok());
  for (NodeId x = 0; x < web.graph.num_nodes(); ++x) {
    EXPECT_NEAR(est.value().absolute_mass[x],
                actual.value().absolute_mass[x], 1e-11);
    EXPECT_NEAR(est.value().relative_mass[x],
                actual.value().relative_mass[x], 1e-9);
  }
}

TEST_P(MassPropertyTest, DetectorMonotoneInThresholds) {
  RandomWeb web = MakeRandomWeb(70, 3.0, 0.3, GetParam() + 500);
  std::vector<NodeId> core;
  for (NodeId x : web.labels.GoodNodes()) {
    if (x % 3 == 0) core.push_back(x);
  }
  if (core.empty()) return;
  core::SpamMassOptions options;
  options.solver = Precise();
  auto est = core::EstimateSpamMass(web.graph, core, options);
  ASSERT_TRUE(est.ok());

  auto count = [&](double tau, double rho) {
    core::DetectorConfig config;
    config.relative_mass_threshold = tau;
    config.scaled_pagerank_threshold = rho;
    return core::DetectSpamCandidates(est.value(), config).size();
  };
  // Raising either threshold never yields more candidates.
  EXPECT_GE(count(0.2, 1.0), count(0.5, 1.0));
  EXPECT_GE(count(0.5, 1.0), count(0.9, 1.0));
  EXPECT_GE(count(0.5, 0.5), count(0.5, 2.0));
  EXPECT_GE(count(0.5, 2.0), count(0.5, 8.0));
}

TEST_P(MassPropertyTest, GammaScalesCoreContributionLinearly) {
  // p′ is linear in the jump vector, hence linear in γ.
  RandomWeb web = MakeRandomWeb(50, 2.5, 0.3, GetParam() + 600);
  std::vector<NodeId> core;
  for (NodeId x : web.labels.GoodNodes()) {
    if (x % 4 == 0) core.push_back(x);
  }
  if (core.empty()) return;
  core::SpamMassOptions options;
  options.solver = Precise();
  options.gamma = 0.4;
  auto half = core::EstimateSpamMass(web.graph, core, options);
  options.gamma = 0.8;
  auto full = core::EstimateSpamMass(web.graph, core, options);
  ASSERT_TRUE(half.ok() && full.ok());
  for (NodeId x = 0; x < web.graph.num_nodes(); ++x) {
    EXPECT_NEAR(2.0 * half.value().core_pagerank[x],
                full.value().core_pagerank[x], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MassPropertyTest,
                         ::testing::Values(1u, 4u, 9u, 16u, 25u));

}  // namespace
}  // namespace spammass
