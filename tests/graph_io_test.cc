// Round-trip and error-path tests of graph (de)serialization.

#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/graph_builder.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

class GraphIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  WebGraph SampleGraph() {
    GraphBuilder b(5);
    b.AddEdge(0, 1);
    b.AddEdge(0, 2);
    b.AddEdge(2, 3);
    b.AddEdge(3, 0);
    // Node 4 is isolated — round trips must preserve it.
    return b.Build();
  }

  void ExpectSameStructure(const WebGraph& a, const WebGraph& b) {
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (NodeId x = 0; x < a.num_nodes(); ++x) {
      auto na = a.OutNeighbors(x);
      auto nb = b.OutNeighbors(x);
      ASSERT_EQ(na.size(), nb.size()) << "node " << x;
      EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
    }
  }
};

TEST_F(GraphIoTest, EdgeListRoundTrip) {
  WebGraph g = SampleGraph();
  std::string path = TempPath("edges.txt");
  ASSERT_TRUE(graph::WriteEdgeListText(g, path).ok());
  auto loaded = graph::ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameStructure(g, loaded.value());
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  WebGraph g = SampleGraph();
  std::string path = TempPath("graph.bin");
  ASSERT_TRUE(graph::WriteBinary(g, path).ok());
  auto loaded = graph::ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameStructure(g, loaded.value());
}

TEST_F(GraphIoTest, EdgeListSkipsCommentsAndBlankLines) {
  std::string path = TempPath("comments.txt");
  {
    std::ofstream f(path);
    f << "# a comment\n\n0 1\n\n# another\n1 2\n";
  }
  auto loaded = graph::ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 3u);
  EXPECT_EQ(loaded.value().num_edges(), 2u);
}

TEST_F(GraphIoTest, EdgeListNormalizesDuplicatesAndSelfLoops) {
  std::string path = TempPath("dirty.txt");
  {
    std::ofstream f(path);
    f << "0 1\n0 1\n1 1\n1 0\n";
  }
  auto loaded = graph::ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_edges(), 2u);  // 0->1 and 1->0
}

TEST_F(GraphIoTest, EdgeListRejectsMalformedLines) {
  std::string path = TempPath("bad.txt");
  {
    std::ofstream f(path);
    f << "0 1 2\n";
  }
  EXPECT_FALSE(graph::ReadEdgeListText(path).ok());

  {
    std::ofstream f(path);
    f << "zero one\n";
  }
  EXPECT_FALSE(graph::ReadEdgeListText(path).ok());
}

TEST_F(GraphIoTest, MissingFileReported) {
  auto r = graph::ReadEdgeListText(TempPath("does-not-exist.txt"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
}

TEST_F(GraphIoTest, BinaryRejectsCorruptMagic) {
  std::string path = TempPath("corrupt.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOPE-not-a-graph";
  }
  EXPECT_FALSE(graph::ReadBinary(path).ok());
}

TEST_F(GraphIoTest, BinaryRejectsTruncation) {
  WebGraph g = SampleGraph();
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(graph::WriteBinary(g, path).ok());
  // Chop the tail off.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 6));
  }
  EXPECT_FALSE(graph::ReadBinary(path).ok());
}

TEST_F(GraphIoTest, HostNamesRoundTrip) {
  GraphBuilder b;
  NodeId a = b.AddNode("alpha.example.com");
  NodeId c = b.AddNode("beta.example.org");
  b.AddEdge(a, c);
  WebGraph g = b.Build();
  std::string path = TempPath("hosts.tsv");
  ASSERT_TRUE(graph::WriteHostNames(g, path).ok());

  GraphBuilder b2(2);
  b2.AddEdge(0, 1);
  WebGraph g2 = b2.Build();
  ASSERT_TRUE(graph::ReadHostNames(path, &g2).ok());
  EXPECT_EQ(g2.HostName(0), "alpha.example.com");
  EXPECT_EQ(g2.HostName(1), "beta.example.org");
}

TEST_F(GraphIoTest, HostNamesMustCoverAllNodes) {
  std::string path = TempPath("partial.tsv");
  {
    std::ofstream f(path);
    f << "0\tonly.example.com\n";
  }
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  EXPECT_FALSE(graph::ReadHostNames(path, &g).ok());
}

}  // namespace
}  // namespace spammass
