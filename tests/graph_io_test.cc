// Round-trip and error-path tests of graph (de)serialization, including
// v1 -> v2 binary migration and corruption handling of the v2 container.

#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "graph/graph_builder.h"
#include "util/checksum.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

class GraphIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  WebGraph SampleGraph() {
    GraphBuilder b(5);
    b.AddEdge(0, 1);
    b.AddEdge(0, 2);
    b.AddEdge(2, 3);
    b.AddEdge(3, 0);
    // Node 4 is isolated — round trips must preserve it.
    return b.Build();
  }

  void ExpectSameStructure(const WebGraph& a, const WebGraph& b) {
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    for (NodeId x = 0; x < a.num_nodes(); ++x) {
      auto na = a.OutNeighbors(x);
      auto nb = b.OutNeighbors(x);
      ASSERT_EQ(na.size(), nb.size()) << "node " << x;
      EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
    }
  }
};

TEST_F(GraphIoTest, EdgeListRoundTrip) {
  WebGraph g = SampleGraph();
  std::string path = TempPath("edges.txt");
  ASSERT_TRUE(graph::WriteEdgeListText(g, path).ok());
  auto loaded = graph::ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameStructure(g, loaded.value());
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  WebGraph g = SampleGraph();
  std::string path = TempPath("graph.bin");
  ASSERT_TRUE(graph::WriteBinary(g, path).ok());
  auto loaded = graph::ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameStructure(g, loaded.value());
}

TEST_F(GraphIoTest, EdgeListSkipsCommentsAndBlankLines) {
  std::string path = TempPath("comments.txt");
  {
    std::ofstream f(path);
    f << "# a comment\n\n0 1\n\n# another\n1 2\n";
  }
  auto loaded = graph::ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 3u);
  EXPECT_EQ(loaded.value().num_edges(), 2u);
}

TEST_F(GraphIoTest, EdgeListNormalizesDuplicatesAndSelfLoops) {
  std::string path = TempPath("dirty.txt");
  {
    std::ofstream f(path);
    f << "0 1\n0 1\n1 1\n1 0\n";
  }
  auto loaded = graph::ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_edges(), 2u);  // 0->1 and 1->0
}

TEST_F(GraphIoTest, EdgeListRejectsMalformedLines) {
  std::string path = TempPath("bad.txt");
  {
    std::ofstream f(path);
    f << "0 1 2\n";
  }
  EXPECT_FALSE(graph::ReadEdgeListText(path).ok());

  {
    std::ofstream f(path);
    f << "zero one\n";
  }
  EXPECT_FALSE(graph::ReadEdgeListText(path).ok());
}

TEST_F(GraphIoTest, MissingFileReported) {
  auto r = graph::ReadEdgeListText(TempPath("does-not-exist.txt"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kIoError);
}

TEST_F(GraphIoTest, BinaryRejectsCorruptMagic) {
  std::string path = TempPath("corrupt.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOPE-not-a-graph";
  }
  EXPECT_FALSE(graph::ReadBinary(path).ok());
}

TEST_F(GraphIoTest, BinaryRejectsTruncation) {
  WebGraph g = SampleGraph();
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(graph::WriteBinary(g, path).ok());
  // Chop the tail off.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 6));
  }
  EXPECT_FALSE(graph::ReadBinary(path).ok());
}

TEST_F(GraphIoTest, HostNamesRoundTrip) {
  GraphBuilder b;
  NodeId a = b.AddNode("alpha.example.com");
  NodeId c = b.AddNode("beta.example.org");
  b.AddEdge(a, c);
  WebGraph g = b.Build();
  std::string path = TempPath("hosts.tsv");
  ASSERT_TRUE(graph::WriteHostNames(g, path).ok());

  GraphBuilder b2(2);
  b2.AddEdge(0, 1);
  WebGraph g2 = b2.Build();
  ASSERT_TRUE(graph::ReadHostNames(path, &g2).ok());
  EXPECT_EQ(g2.HostName(0), "alpha.example.com");
  EXPECT_EQ(g2.HostName(1), "beta.example.org");
}

TEST_F(GraphIoTest, BinaryV1MigrationStillReadable) {
  WebGraph g = SampleGraph();
  std::string path = TempPath("graph_v1.bin");
  ASSERT_TRUE(graph::WriteBinaryV1(g, path).ok());
  auto loaded = graph::ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameStructure(g, loaded.value());
}

TEST_F(GraphIoTest, BinaryV1V2Equivalence) {
  WebGraph g = SampleGraph();
  std::string v1_path = TempPath("equiv_v1.bin");
  std::string v2_path = TempPath("equiv_v2.bin");
  ASSERT_TRUE(graph::WriteBinaryV1(g, v1_path).ok());
  ASSERT_TRUE(graph::WriteBinary(g, v2_path).ok());
  auto from_v1 = graph::ReadBinary(v1_path);
  auto from_v2 = graph::ReadBinary(v2_path);
  ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  ExpectSameStructure(from_v1.value(), from_v2.value());
  ExpectSameStructure(g, from_v2.value());
}

TEST_F(GraphIoTest, BinaryV2HostNamesRoundTrip) {
  GraphBuilder b;
  NodeId x = b.AddNode("alpha.example.com");
  NodeId y = b.AddNode("");  // Empty names must survive the blob encoding.
  NodeId z = b.AddNode("gamma.example.org");
  b.AddEdge(x, y);
  b.AddEdge(y, z);
  WebGraph g = b.Build();
  std::string path = TempPath("named_v2.bin");
  ASSERT_TRUE(graph::WriteBinary(g, path).ok());
  auto loaded = graph::ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameStructure(g, loaded.value());
  EXPECT_EQ(loaded.value().HostName(x), "alpha.example.com");
  EXPECT_EQ(loaded.value().HostName(y), "");
  EXPECT_EQ(loaded.value().HostName(z), "gamma.example.org");
}

TEST_F(GraphIoTest, BinaryV2ParallelLoadMatchesSerial) {
  util::Rng rng(123);
  GraphBuilder b(5000);
  for (int e = 0; e < 40000; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(5000));
    auto v = static_cast<NodeId>(rng.UniformIndex(5000));
    if (u != v) b.AddEdge(u, v);
  }
  WebGraph g = b.Build();
  std::string path = TempPath("parallel_load.bin");
  ASSERT_TRUE(graph::WriteBinary(g, path).ok());
  auto serial = graph::ReadBinary(path);
  util::ThreadPool pool(4);
  auto parallel = graph::ReadBinary(path, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectSameStructure(serial.value(), parallel.value());
  ASSERT_EQ(serial.value().InOffsets().size(),
            parallel.value().InOffsets().size());
  EXPECT_TRUE(std::equal(serial.value().Sources().begin(),
                         serial.value().Sources().end(),
                         parallel.value().Sources().begin()));
}

TEST_F(GraphIoTest, BinaryV2RandomGraphRoundTripProperty) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const NodeId n = static_cast<NodeId>(20 + rng.UniformIndex(200));
    GraphBuilder b(n);
    const uint64_t edges = rng.UniformIndex(4 * n);
    for (uint64_t e = 0; e < edges; ++e) {
      auto u = static_cast<NodeId>(rng.UniformIndex(n));
      auto v = static_cast<NodeId>(rng.UniformIndex(n));
      if (u != v) b.AddEdge(u, v);
    }
    WebGraph g = b.Build();
    std::string path = TempPath("prop.bin");
    ASSERT_TRUE(graph::WriteBinary(g, path).ok());
    auto loaded = graph::ReadBinary(path);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": "
                             << loaded.status().ToString();
    ExpectSameStructure(g, loaded.value());
  }
}

class GraphIoCorruptionTest : public GraphIoTest {
 protected:
  // Writes SampleGraph as v2 and returns the raw bytes.
  std::string WriteSampleV2(const std::string& path) {
    WebGraph g = SampleGraph();
    EXPECT_TRUE(graph::WriteBinary(g, path).ok());
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void WriteBytes(const std::string& path, const std::string& bytes) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Recomputes the trailing whole-file checksum so structural corruption
  // is exercised separately from checksum detection.
  void FixChecksum(std::string* bytes) {
    ASSERT_GE(bytes->size(), 8u);
    uint64_t digest =
        util::Fnv1a64x8Digest(bytes->data(), bytes->size() - 8);
    std::memcpy(bytes->data() + bytes->size() - 8, &digest, sizeof(digest));
  }
};

TEST_F(GraphIoCorruptionTest, TruncationAtEveryRegionRejected) {
  std::string path = TempPath("trunc_v2.bin");
  std::string bytes = WriteSampleV2(path);
  ASSERT_GT(bytes.size(), 40u);
  // Cut inside the header, the offsets array, the targets array, and the
  // checksum trailer.
  const std::vector<size_t> cuts = {3,  9,  20, 40, bytes.size() - 9,
                                    bytes.size() - 1};
  for (size_t keep : cuts) {
    WriteBytes(path, bytes.substr(0, keep));
    EXPECT_FALSE(graph::ReadBinary(path).ok()) << "kept " << keep << " bytes";
  }
}

TEST_F(GraphIoCorruptionTest, BadMagicRejected) {
  std::string path = TempPath("magic_v2.bin");
  std::string bytes = WriteSampleV2(path);
  bytes[0] = 'X';
  WriteBytes(path, bytes);
  auto r = graph::ReadBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("not a spammass binary"),
            std::string::npos);
}

TEST_F(GraphIoCorruptionTest, UnsupportedVersionRejected) {
  std::string path = TempPath("version_v2.bin");
  std::string bytes = WriteSampleV2(path);
  bytes[4] = 99;
  WriteBytes(path, bytes);
  auto r = graph::ReadBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unsupported version"),
            std::string::npos);
}

TEST_F(GraphIoCorruptionTest, FlippedPayloadByteFailsChecksum) {
  std::string path = TempPath("flip_v2.bin");
  std::string bytes = WriteSampleV2(path);
  // Flip one bit inside the targets array (after the 32-byte header and
  // the six uint64 offsets of the 5-node sample graph).
  const size_t target_region = 32 + 6 * 8;
  ASSERT_LT(target_region, bytes.size() - 8);
  bytes[target_region] = static_cast<char>(bytes[target_region] ^ 0x10);
  WriteBytes(path, bytes);
  auto r = graph::ReadBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum mismatch"),
            std::string::npos);
}

TEST_F(GraphIoCorruptionTest, OutOfRangeTargetWithValidChecksumRejected) {
  std::string path = TempPath("range_v2.bin");
  std::string bytes = WriteSampleV2(path);
  // Overwrite the first target with an id far beyond num_nodes, then
  // recompute the checksum — the structural validation must catch it.
  const size_t target_region = 32 + 6 * 8;
  const uint32_t bogus = 0xfffffff0u;
  std::memcpy(bytes.data() + target_region, &bogus, sizeof(bogus));
  FixChecksum(&bytes);
  WriteBytes(path, bytes);
  auto r = graph::ReadBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kFailedPrecondition)
      << r.status().ToString();
}

TEST_F(GraphIoCorruptionTest, UnsortedRowWithValidChecksumRejected) {
  // Node 0 of the sample graph has out-neighbors {1, 2}; swapping them
  // breaks the strictly-ascending row invariant.
  std::string path = TempPath("unsorted_v2.bin");
  std::string bytes = WriteSampleV2(path);
  const size_t target_region = 32 + 6 * 8;
  uint32_t first = 0, second = 0;
  std::memcpy(&first, bytes.data() + target_region, sizeof(first));
  std::memcpy(&second, bytes.data() + target_region + 4, sizeof(second));
  ASSERT_LT(first, second);
  std::memcpy(bytes.data() + target_region, &second, sizeof(second));
  std::memcpy(bytes.data() + target_region + 4, &first, sizeof(first));
  FixChecksum(&bytes);
  WriteBytes(path, bytes);
  EXPECT_FALSE(graph::ReadBinary(path).ok());
}

TEST_F(GraphIoCorruptionTest, TrailingGarbageRejected) {
  std::string path = TempPath("trailing_v2.bin");
  std::string bytes = WriteSampleV2(path);
  bytes += "extra";
  WriteBytes(path, bytes);
  EXPECT_FALSE(graph::ReadBinary(path).ok());
}

TEST_F(GraphIoTest, HostNamesMustCoverAllNodes) {
  std::string path = TempPath("partial.tsv");
  {
    std::ofstream f(path);
    f << "0\tonly.example.com\n";
  }
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  EXPECT_FALSE(graph::ReadHostNames(path, &g).ok());
}

}  // namespace
}  // namespace spammass
