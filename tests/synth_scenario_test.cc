// Tests of the canned scenario configurations.

#include "synth/scenario.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using synth::TinyScenario;
using synth::WebModelConfig;
using synth::Yahoo2004Scenario;

TEST(ScenarioTest, DefaultValidates) {
  EXPECT_TRUE(Yahoo2004Scenario().Validate().ok());
  EXPECT_TRUE(TinyScenario().Validate().ok());
}

TEST(ScenarioTest, ContainsAnomalyArchetypes) {
  WebModelConfig cfg = Yahoo2004Scenario();
  bool has_isolated_with_hubs = false;
  bool has_isolated_without_hubs = false;
  bool has_poor_coverage = false;
  for (const auto& r : cfg.regions) {
    if (r.isolated_community && r.num_hubs > 0) has_isolated_with_hubs = true;
    if (r.isolated_community && r.num_hubs == 0) {
      has_isolated_without_hubs = true;
    }
    if (!r.isolated_community && r.core_coverage < 0.1) {
      has_poor_coverage = true;
    }
  }
  EXPECT_TRUE(has_isolated_with_hubs);     // Alibaba archetype
  EXPECT_TRUE(has_isolated_without_hubs);  // Brazilian-blog archetype
  EXPECT_TRUE(has_poor_coverage);          // Polish archetype
}

TEST(ScenarioTest, ScaleMultipliesPopulations) {
  WebModelConfig full = Yahoo2004Scenario(1.0);
  WebModelConfig half = Yahoo2004Scenario(0.5);
  uint64_t full_hosts = 0, half_hosts = 0;
  for (const auto& r : full.regions) full_hosts += r.num_hosts;
  for (const auto& r : half.regions) half_hosts += r.num_hosts;
  EXPECT_NEAR(static_cast<double>(half_hosts) / full_hosts, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(half.spam.num_farms) / full.spam.num_farms,
              0.5, 0.01);
}

TEST(ScenarioTest, StructuralTargetsMatchPaper) {
  WebModelConfig cfg = Yahoo2004Scenario();
  // The good-web dangling share is set above the paper's 66.4% because
  // spam nodes (which almost always link) dilute the graph-wide fraction
  // back down to the paper's value; the generator test asserts the final
  // graph-wide fractions.
  EXPECT_GT(cfg.no_outlink_fraction, 0.664);
  EXPECT_LT(cfg.no_outlink_fraction, 0.85);
  EXPECT_GT(cfg.spam.num_farms, 100u);
  EXPECT_GT(cfg.num_isolated_cliques, 0u);
  EXPECT_GT(cfg.spam.num_expired_domain_targets, 0u);
}

TEST(ScenarioTest, SeedIsPropagated) {
  EXPECT_EQ(Yahoo2004Scenario(1.0, 123).seed, 123u);
}

}  // namespace
}  // namespace spammass
