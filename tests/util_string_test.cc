// Tests of string helpers.

#include "util/string_util.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using util::FormatWithCommas;
using util::Join;
using util::NextField;
using util::ParseUint64;
using util::Split;
using util::SplitWhitespace;
using util::StringPrintf;
using util::Trim;

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   \t ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, Basics) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringPrintfTest, Formats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(NextFieldTest, WalksWhitespaceSeparatedFields) {
  std::string_view s = "  12 \t 34\n 56  ";
  EXPECT_EQ(NextField(&s), "12");
  EXPECT_EQ(NextField(&s), "34");
  EXPECT_EQ(NextField(&s), "56");
  EXPECT_EQ(NextField(&s), "");
  EXPECT_TRUE(s.empty());
}

TEST(NextFieldTest, EmptyAndAllWhitespace) {
  std::string_view empty = "";
  EXPECT_EQ(NextField(&empty), "");
  std::string_view ws = " \t\n ";
  EXPECT_EQ(NextField(&ws), "");
  EXPECT_TRUE(ws.empty());
}

TEST(NextFieldTest, SingleFieldNoWhitespace) {
  std::string_view s = "alone";
  EXPECT_EQ(NextField(&s), "alone");
  EXPECT_EQ(NextField(&s), "");
}

TEST(ParseUint64Test, ParsesValidNumbers) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("42", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));  // UINT64_MAX
  EXPECT_EQ(v, 18446744073709551615ull);
}

TEST(ParseUint64Test, RejectsGarbage) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("x", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));    // Trailing junk.
  EXPECT_FALSE(ParseUint64(" 12", &v));    // No leading whitespace.
  EXPECT_FALSE(ParseUint64("-1", &v));     // Negatives are not unsigned.
  EXPECT_FALSE(ParseUint64("+1", &v));     // from_chars rejects '+'.
  EXPECT_FALSE(ParseUint64("1.5", &v));
  EXPECT_FALSE(ParseUint64("0x10", &v));   // No hex.
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // Overflow.
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(73300000), "73,300,000");
  EXPECT_EQ(FormatWithCommas(979000000), "979,000,000");
}

}  // namespace
}  // namespace spammass
