// Tests of string helpers.

#include "util/string_util.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using util::FormatWithCommas;
using util::Join;
using util::Split;
using util::SplitWhitespace;
using util::StringPrintf;
using util::Trim;

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, DropsEmptyRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   \t ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, Basics) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringPrintfTest, Formats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(73300000), "73,300,000");
  EXPECT_EQ(FormatWithCommas(979000000), "979,000,000");
}

}  // namespace
}  // namespace spammass
