// Tests of the pipeline glue beyond the large integration suite: option
// handling, gamma clamping, and re-estimation error paths.

#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace spammass {
namespace {

using eval::PipelineOptions;
using eval::PipelineResult;
using eval::ReestimateWithCore;
using eval::RunPipeline;

PipelineOptions TinyOptions(uint64_t seed = 3) {
  PipelineOptions options;
  options.scale = 0.02;
  options.seed = seed;
  options.sample_size = 60;
  return options;
}

TEST(ExperimentTest, FixedGammaIsRespected) {
  PipelineOptions options = TinyOptions();
  options.estimate_gamma_from_sample = false;
  options.mass.gamma = 0.6;
  auto r = RunPipeline(options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r.value().gamma_used, 0.6);
}

TEST(ExperimentTest, EstimatedGammaIsClamped) {
  // Even with a degenerate judged sample the γ used stays in (0, 1].
  PipelineOptions options = TinyOptions(11);
  options.gamma_sample_size = 3;  // tiny, noisy sample
  auto r = RunPipeline(options);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().gamma_used, 0.05);
  EXPECT_LE(r.value().gamma_used, 1.0);
}

TEST(ExperimentTest, SampleSizeHonored) {
  PipelineOptions options = TinyOptions(5);
  options.sample_size = 10;
  options.scaled_rho = 5.0;  // widen T so 10 is attainable
  auto r = RunPipeline(options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().sample.hosts.size(), 10u);
}

TEST(ExperimentTest, RhoControlsFilterSize) {
  PipelineOptions lo = TinyOptions(7);
  lo.scaled_rho = 5.0;
  PipelineOptions hi = TinyOptions(7);
  hi.scaled_rho = 20.0;
  auto rl = RunPipeline(lo);
  auto rh = RunPipeline(hi);
  ASSERT_TRUE(rl.ok() && rh.ok());
  EXPECT_GT(rl.value().filtered.size(), rh.value().filtered.size());
}

TEST(ExperimentTest, ReestimateRejectsBadCore) {
  auto r = RunPipeline(TinyOptions(9));
  ASSERT_TRUE(r.ok());
  auto empty = ReestimateWithCore(r.value(), {}, TinyOptions(9));
  EXPECT_FALSE(empty.ok());
  auto out_of_range = ReestimateWithCore(
      r.value(), {r.value().web.graph.num_nodes()}, TinyOptions(9));
  EXPECT_FALSE(out_of_range.ok());
}

TEST(ExperimentTest, ReestimateKeepsGamma) {
  auto r = RunPipeline(TinyOptions(13));
  ASSERT_TRUE(r.ok());
  auto reestimate = ReestimateWithCore(r.value(), r.value().good_core,
                                       TinyOptions(13));
  ASSERT_TRUE(reestimate.ok());
  const eval::EvaluationSample& sample = reestimate.value().sample;
  // Same core + same gamma => identical estimates, identical sample mass.
  for (size_t i = 0; i < sample.hosts.size(); ++i) {
    EXPECT_NEAR(sample.hosts[i].relative_mass,
                r.value().sample.hosts[i].relative_mass, 1e-9);
  }
  // The returned estimates match what the base run computed.
  ASSERT_EQ(reestimate.value().estimates.relative_mass.size(),
            r.value().estimates.relative_mass.size());
  for (size_t i = 0; i < reestimate.value().estimates.relative_mass.size();
       ++i) {
    EXPECT_NEAR(reestimate.value().estimates.relative_mass[i],
                r.value().estimates.relative_mass[i], 1e-9);
  }
}

TEST(ExperimentTest, UnknownFractionFlowsThrough) {
  PipelineOptions options = TinyOptions(15);
  options.scaled_rho = 3.0;
  options.sample_size = 500;
  options.unknown_fraction = 0.5;
  options.nonexistent_fraction = 0.0;
  auto r = RunPipeline(options);
  ASSERT_TRUE(r.ok());
  uint64_t unknown = r.value().sample.CountJudged(core::NodeLabel::kUnknown);
  double fraction =
      static_cast<double>(unknown) / r.value().sample.hosts.size();
  EXPECT_NEAR(fraction, 0.5, 0.12);
}

}  // namespace
}  // namespace spammass
