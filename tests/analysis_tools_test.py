#!/usr/bin/env python3
"""Fixture tests for the static-analysis tools.

Feeds the intentionally-broken trees under tests/analysis_fixtures/ through
tools/spammass_lint.py and tools/check_layers.py and asserts the exact
violation reports (file, line, rule) plus exit codes. Registered as the
`spammass_analysis_tools` ctest; also runnable directly:

    python3 tests/analysis_tools_test.py
"""

import os
import subprocess
import sys
import tempfile
import unittest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(ROOT, "tests", "analysis_fixtures")
LINT = os.path.join(ROOT, "tools", "spammass_lint.py")
CHECK_LAYERS = os.path.join(ROOT, "tools", "check_layers.py")


def run_tool(script, *argv):
    proc = subprocess.run(
        [sys.executable, script] + list(argv),
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout, proc.stderr


def violation_keys(stdout):
    """Extracts (file, line, rule) from each `file:line: [rule] msg` line."""
    keys = []
    for line in stdout.splitlines():
        if ": [" not in line:
            continue
        location, rest = line.split(": [", 1)
        relpath, line_no = location.rsplit(":", 1)
        rule = rest.split("]", 1)[0]
        keys.append((relpath, int(line_no), rule))
    return keys


class SpammassLintFixtureTest(unittest.TestCase):
    def setUp(self):
        self.code, self.stdout, self.stderr = run_tool(
            LINT, "--root", os.path.join(FIXTURES, "lint_tree"))

    def test_exit_code_and_count(self):
        self.assertEqual(self.code, 1, self.stdout + self.stderr)
        self.assertIn("13 violation(s)", self.stderr)

    def test_exact_violation_set(self):
        self.assertEqual(violation_keys(self.stdout), [
            ("src/core/bad_intrinsics.cc", 3, "simd-isolation"),
            ("src/core/bad_intrinsics.cc", 10, "simd-isolation"),
            ("src/core/bad_intrinsics.cc", 13, "simd-isolation"),
            ("src/core/bad_intrinsics.cc", 16, "simd-isolation"),
            ("src/core/bad_proc.cc", 10, "resource-isolation"),
            ("src/core/bad_proc.cc", 14, "resource-isolation"),
            ("src/graph/bad_iteration.cc", 13, "unordered-iteration"),
            ("src/graph/bad_iteration.cc", 21, "unordered-iteration"),
            ("src/pipeline/bad_clock.cc", 10, "wall-clock"),
            ("src/pipeline/bad_clock.cc", 15, "wall-clock"),
            ("src/util/bad_random.cc", 9, "banned-function"),
            ("src/util/bad_random.cc", 10, "banned-function"),
            ("src/util/bad_random.cc", 11, "banned-function"),
        ])

    def test_messages_name_the_offenders(self):
        lines = self.stdout.splitlines()
        self.assertIn("vector intrinsics outside src/pagerank/simd*",
                      lines[0])
        self.assertIn("runtime-dispatched shim", lines[1])
        self.assertIn("kernel introspection (/proc/self)", lines[4])
        self.assertIn("absent-not-zero", lines[4])
        self.assertIn("kernel introspection (perf_event_open)", lines[5])
        self.assertIn("'host_index'", lines[6])
        self.assertIn("bucket order", lines[6])
        self.assertIn("'index'", lines[7])
        self.assertIn("wall-clock source in src/", lines[8])
        self.assertIn("steady_clock outside the timing layers", lines[9])
        self.assertIn("std::random_device", lines[10])
        self.assertIn("srand()", lines[11])
        self.assertIn("rand()", lines[12])

    def test_simd_fallback_post_pass(self):
        # A tree whose vector backend TU exists but whose dispatch shim
        # lost the scalar fallback must fail the post-pass.
        with tempfile.TemporaryDirectory(prefix="spammass_simd_") as tree:
            pagerank = os.path.join(tree, "src", "pagerank")
            os.makedirs(pagerank)
            with open(os.path.join(pagerank, "simd_avx2.cc"), "w",
                      encoding="utf-8") as f:
                f.write("#include <immintrin.h>\n")
            with open(os.path.join(pagerank, "simd.cc"), "w",
                      encoding="utf-8") as f:
                f.write("// dispatch shim without a fallback\n")
            code, stdout, _ = run_tool(LINT, "--root", tree)
            self.assertEqual(code, 1, stdout)
            self.assertIn(
                ("src/pagerank/simd.cc", 1, "simd-isolation"),
                violation_keys(stdout))
            self.assertIn("ScalarSweepRange", stdout)


class CheckLayersFixtureTest(unittest.TestCase):
    def setUp(self):
        self.dot_path = os.path.join(
            tempfile.mkdtemp(prefix="spammass_layers_"), "dag.dot")
        self.code, self.stdout, self.stderr = run_tool(
            CHECK_LAYERS, "--root", os.path.join(FIXTURES, "layer_tree"),
            "--dot", self.dot_path)

    def test_exit_code_and_count(self):
        self.assertEqual(self.code, 1, self.stdout + self.stderr)
        self.assertIn("3 violation(s)", self.stderr)

    def test_exact_violation_set(self):
        self.assertEqual(violation_keys(self.stdout), [
            ("src/newlayer/widget.h", 1, "layer-dag"),
            ("src/stray.cc", 1, "layer-dag"),
            ("src/util/bad_dep.h", 2, "layer-dag"),
        ])

    def test_messages_explain_each_violation(self):
        lines = self.stdout.splitlines()
        self.assertIn("not a declared layer", lines[0])
        self.assertIn("directly under src/", lines[1])
        self.assertIn("layer 'util' must not include layer 'obs'", lines[2])
        self.assertIn('"obs/metrics_stub.h"', lines[2])

    def test_dot_output_draws_declared_dag(self):
        with open(self.dot_path, encoding="utf-8") as f:
            dot = f.read()
        self.assertIn("digraph spammass_layers", dot)
        # A few load-bearing declared edges.
        self.assertIn('"obs" -> "util"', dot)
        self.assertIn('"pipeline" -> "synth"', dot)
        self.assertIn('"eval" -> "pipeline"', dot)
        # The sanctioned runtime back-edge is dashed, labeled, and points
        # the opposite way from the (banned) include edge.
        self.assertIn('"util" -> "obs" [style=dashed', dot)
        self.assertIn("runtime hooks", dot)


class CheckLayersCyclicConfigTest(unittest.TestCase):
    def test_cyclic_declaration_is_a_config_error(self):
        code, stdout, stderr = run_tool(
            CHECK_LAYERS, "--root", os.path.join(FIXTURES, "layer_tree"),
            "--config", os.path.join(FIXTURES, "cyclic_layers.json"))
        self.assertEqual(code, 2, stdout + stderr)
        self.assertIn("cycle", stdout)
        self.assertIn("obs", stdout)
        self.assertIn("config error", stderr)

    def test_unknown_dependency_is_a_config_error(self):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            f.write('{"layers": {"util": ["nonexistent"]}, "top_dirs": []}')
            path = f.name
        try:
            code, stdout, stderr = run_tool(
                CHECK_LAYERS, "--root", os.path.join(FIXTURES, "layer_tree"),
                "--config", path)
        finally:
            os.unlink(path)
        self.assertEqual(code, 2, stdout + stderr)
        self.assertIn("unknown layer 'nonexistent'", stdout)


class RealTreeGuardTest(unittest.TestCase):
    """The fixtures themselves must never leak into the real-tree runs."""

    def test_lint_skips_fixture_directory(self):
        code, stdout, stderr = run_tool(LINT, "--root", ROOT)
        self.assertEqual(code, 0, stdout + stderr)
        self.assertNotIn("analysis_fixtures", stdout)

    def test_check_layers_skips_fixture_directory(self):
        code, stdout, stderr = run_tool(CHECK_LAYERS, "--root", ROOT)
        self.assertEqual(code, 0, stdout + stderr)
        self.assertNotIn("analysis_fixtures", stdout)


if __name__ == "__main__":
    unittest.main()
