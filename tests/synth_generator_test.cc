// Tests of the synthetic web generator: determinism, metadata consistency,
// and the structural properties it must reproduce (Section 4.1 fractions,
// spam wiring, coverage anomalies).

#include "synth/generator.h"

#include <gtest/gtest.h>

#include "graph/graph_stats.h"
#include "synth/scenario.h"
#include "util/logging.h"

namespace spammass {
namespace {

using graph::NodeId;
using synth::GenerateWeb;
using synth::SyntheticWeb;
using synth::TinyScenario;
using synth::WebModelConfig;

class GeneratorTest : public ::testing::Test {
 protected:
  static const SyntheticWeb& Web() {
    static SyntheticWeb* web = [] {
      auto r = GenerateWeb(TinyScenario(7));
      CHECK_OK(r.status());
      return new SyntheticWeb(std::move(r.value()));
    }();
    return *web;
  }
};

TEST_F(GeneratorTest, MetadataSizesMatchGraph) {
  const SyntheticWeb& web = Web();
  const size_t n = web.graph.num_nodes();
  EXPECT_GT(n, 1000u);
  EXPECT_EQ(web.labels.num_nodes(), n);
  EXPECT_EQ(web.region_of_node.size(), n);
  EXPECT_EQ(web.is_directory.size(), n);
  EXPECT_EQ(web.is_gov.size(), n);
  EXPECT_EQ(web.is_edu.size(), n);
  EXPECT_EQ(web.listed.size(), n);
  EXPECT_EQ(web.is_hub.size(), n);
}

TEST_F(GeneratorTest, RegionIdsValid) {
  const SyntheticWeb& web = Web();
  for (uint32_t r : web.region_of_node) {
    EXPECT_LT(r, web.region_names.size());
  }
  EXPECT_EQ(web.region_names[web.clique_region], "cliques");
  EXPECT_EQ(web.region_names[web.spam_region], "spam");
}

TEST_F(GeneratorTest, SpamNodesAreFarmAndExpiredNodes) {
  const SyntheticWeb& web = Web();
  uint64_t expected_spam = web.expired_domain_targets.size();
  for (const auto& farm : web.farms) {
    expected_spam += 1 + farm.boosters.size();
  }
  EXPECT_EQ(web.labels.CountLabel(core::NodeLabel::kSpam), expected_spam);
  for (const auto& farm : web.farms) {
    EXPECT_TRUE(web.labels.IsSpam(farm.target));
    EXPECT_EQ(web.region_of_node[farm.target], web.spam_region);
    for (NodeId b : farm.boosters) {
      EXPECT_TRUE(web.labels.IsSpam(b));
      if (farm.laundered) {
        // Boosters support the good intermediaries, never the target.
        EXPECT_FALSE(web.graph.HasEdge(b, farm.target));
      } else {
        EXPECT_TRUE(web.graph.HasEdge(b, farm.target));
      }
    }
    if (farm.laundered) {
      ASSERT_FALSE(farm.intermediaries.empty());
      for (NodeId g : farm.intermediaries) {
        EXPECT_TRUE(web.labels.IsGood(g));
        EXPECT_TRUE(web.graph.HasEdge(g, farm.target));
      }
    }
  }
}

TEST_F(GeneratorTest, ListedImpliesEligibleGood) {
  const SyntheticWeb& web = Web();
  for (NodeId x = 0; x < web.graph.num_nodes(); ++x) {
    if (web.listed[x]) {
      EXPECT_TRUE(web.is_directory[x] || web.is_gov[x] || web.is_edu[x]);
      EXPECT_TRUE(web.labels.IsGood(x));
    }
  }
  auto core = web.AssembledGoodCore();
  EXPECT_FALSE(core.empty());
  EXPECT_TRUE(std::is_sorted(core.begin(), core.end()));
}

TEST_F(GeneratorTest, StructuralFractionsNearPaper) {
  // Section 4.1: 35% no inlinks, 66.4% no outlinks, 25.8% isolated. The
  // synthetic graph must land in the same regime (±10 points).
  const SyntheticWeb& web = Web();
  auto stats = graph::ComputeGraphStats(web.graph);
  EXPECT_NEAR(stats.FractionNoOutlinks(), 0.664, 0.12);
  EXPECT_NEAR(stats.FractionNoInlinks(), 0.35, 0.12);
  EXPECT_NEAR(stats.FractionIsolated(), 0.258, 0.12);
}

TEST_F(GeneratorTest, IsolatedCommunitiesDoNotTouchOtherRegions) {
  const SyntheticWeb& web = Web();
  for (NodeId x = 0; x < web.graph.num_nodes(); ++x) {
    uint32_t rx = web.region_of_node[x];
    if (rx >= web.config.regions.size() ||
        !web.config.regions[rx].isolated_community) {
      continue;
    }
    for (NodeId y : web.graph.OutNeighbors(x)) {
      EXPECT_EQ(web.region_of_node[y], rx);
    }
    for (NodeId y : web.graph.InNeighbors(x)) {
      EXPECT_EQ(web.region_of_node[y], rx);
    }
  }
}

TEST_F(GeneratorTest, AnomalyAttribution) {
  const SyntheticWeb& web = Web();
  uint32_t mall = web.RegionIndex("cn-mall");
  uint32_t blog = web.RegionIndex("br-blog");
  uint32_t pl = web.RegionIndex("pl");
  uint32_t generic = web.RegionIndex("generic");
  ASSERT_LT(mall, web.config.regions.size());
  EXPECT_TRUE(web.IsAnomalousRegion(mall));
  EXPECT_TRUE(web.IsAnomalousRegion(blog));
  EXPECT_TRUE(web.IsAnomalousRegion(pl));
  EXPECT_FALSE(web.IsAnomalousRegion(generic));
  EXPECT_FALSE(web.IsAnomalousRegion(web.spam_region));
}

TEST_F(GeneratorTest, CliquesAreGoodAndInternallyWired) {
  const SyntheticWeb& web = Web();
  EXPECT_FALSE(web.isolated_cliques.empty());
  for (const auto& clique : web.isolated_cliques) {
    ASSERT_GE(clique.size(), 2u);
    NodeId center = clique[0];
    for (NodeId m : clique) {
      EXPECT_TRUE(web.labels.IsGood(m));
      EXPECT_EQ(web.region_of_node[m], web.clique_region);
    }
    for (size_t i = 1; i < clique.size(); ++i) {
      EXPECT_TRUE(web.graph.HasEdge(clique[i], center));
      EXPECT_TRUE(web.graph.HasEdge(center, clique[i]));
    }
  }
}

TEST_F(GeneratorTest, ExpiredDomainsHaveOnlyGoodInlinks) {
  const SyntheticWeb& web = Web();
  EXPECT_FALSE(web.expired_domain_targets.empty());
  for (NodeId t : web.expired_domain_targets) {
    EXPECT_TRUE(web.labels.IsSpam(t));
    EXPECT_GT(web.graph.InDegree(t), 0u);
    for (NodeId src : web.graph.InNeighbors(t)) {
      EXPECT_TRUE(web.labels.IsGood(src));
    }
  }
}

TEST(GeneratorDeterminismTest, SameSeedSameGraph) {
  auto a = GenerateWeb(TinyScenario(99));
  auto b = GenerateWeb(TinyScenario(99));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().graph.num_nodes(), b.value().graph.num_nodes());
  ASSERT_EQ(a.value().graph.num_edges(), b.value().graph.num_edges());
  for (NodeId x = 0; x < a.value().graph.num_nodes(); ++x) {
    auto na = a.value().graph.OutNeighbors(x);
    auto nb = b.value().graph.OutNeighbors(x);
    ASSERT_EQ(na.size(), nb.size());
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin()));
  }
}

TEST(GeneratorDeterminismTest, DifferentSeedsDiffer) {
  auto a = GenerateWeb(TinyScenario(1));
  auto b = GenerateWeb(TinyScenario(2));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().graph.num_edges(), b.value().graph.num_edges());
}

TEST(GeneratorValidationTest, RejectsBadConfigs) {
  WebModelConfig empty;
  EXPECT_FALSE(GenerateWeb(empty).ok());

  WebModelConfig bad = TinyScenario(1);
  bad.regions[0].directory_fraction = 1.7;
  EXPECT_FALSE(GenerateWeb(bad).ok());

  bad = TinyScenario(1);
  bad.spam.booster_exponent = 0.5;
  EXPECT_FALSE(GenerateWeb(bad).ok());

  bad = TinyScenario(1);
  bad.mean_outdegree = -1;
  EXPECT_FALSE(GenerateWeb(bad).ok());

  bad = TinyScenario(1);
  for (auto& r : bad.regions) r.isolated_community = true;
  EXPECT_FALSE(GenerateWeb(bad).ok());
}

}  // namespace
}  // namespace spammass
