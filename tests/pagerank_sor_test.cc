// Tests of the SOR solver.

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "pagerank/solver.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::ComputeUniformPageRank;
using pagerank::DanglingPolicy;
using pagerank::Method;
using pagerank::SolverOptions;

WebGraph IrregularGraph() {
  GraphBuilder b(40);
  for (NodeId i = 0; i < 40; ++i) {
    b.AddEdge(i, (i + 1) % 40);
    if (i % 3 == 0) b.AddEdge(i, (i + 11) % 40);
    if (i % 7 == 0) b.AddEdge(i, (i * 5 + 2) % 40);
  }
  return b.Build();
}

SolverOptions Options(Method method, double omega = 1.1) {
  SolverOptions opt;
  opt.method = method;
  opt.sor_omega = omega;
  opt.tolerance = 1e-13;
  opt.max_iterations = 5000;
  return opt;
}

TEST(SorTest, MatchesGaussSeidelSolution) {
  WebGraph g = IrregularGraph();
  auto gs = ComputeUniformPageRank(g, Options(Method::kGaussSeidel));
  auto sor = ComputeUniformPageRank(g, Options(Method::kSor, 1.15));
  ASSERT_TRUE(gs.ok() && sor.ok());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_NEAR(gs.value().scores[x], sor.value().scores[x], 1e-10);
  }
}

TEST(SorTest, OmegaOneIsGaussSeidel) {
  WebGraph g = IrregularGraph();
  SolverOptions gs_opt = Options(Method::kGaussSeidel);
  SolverOptions sor_opt = Options(Method::kSor, 1.0);
  auto gs = ComputeUniformPageRank(g, gs_opt);
  auto sor = ComputeUniformPageRank(g, sor_opt);
  ASSERT_TRUE(gs.ok() && sor.ok());
  EXPECT_EQ(gs.value().iterations, sor.value().iterations);
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_DOUBLE_EQ(gs.value().scores[x], sor.value().scores[x]);
  }
}

TEST(SorTest, MatchesJacobiWithRedistribution) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);  // 2 dangles
  b.AddEdge(3, 2);
  b.AddEdge(4, 0);
  b.AddEdge(5, 4);
  WebGraph g = b.Build();
  SolverOptions jacobi_opt = Options(Method::kJacobi);
  SolverOptions sor_opt = Options(Method::kSor, 1.2);
  jacobi_opt.dangling = sor_opt.dangling =
      DanglingPolicy::kRedistributeToJump;
  auto jacobi = ComputeUniformPageRank(g, jacobi_opt);
  auto sor = ComputeUniformPageRank(g, sor_opt);
  ASSERT_TRUE(jacobi.ok() && sor.ok());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_NEAR(jacobi.value().scores[x], sor.value().scores[x], 1e-10);
  }
}

TEST(SorTest, InvalidOmegaRejected) {
  WebGraph g = IrregularGraph();
  EXPECT_FALSE(ComputeUniformPageRank(g, Options(Method::kSor, 0.0)).ok());
  EXPECT_FALSE(ComputeUniformPageRank(g, Options(Method::kSor, 2.0)).ok());
  EXPECT_FALSE(ComputeUniformPageRank(g, Options(Method::kSor, -0.5)).ok());
}

TEST(SorTest, UnderRelaxationStillConverges) {
  WebGraph g = IrregularGraph();
  auto sor = ComputeUniformPageRank(g, Options(Method::kSor, 0.6));
  ASSERT_TRUE(sor.ok());
  EXPECT_TRUE(sor.value().converged);
  auto gs = ComputeUniformPageRank(g, Options(Method::kGaussSeidel));
  ASSERT_TRUE(gs.ok());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_NEAR(gs.value().scores[x], sor.value().scores[x], 1e-10);
  }
}

}  // namespace
}  // namespace spammass
