// Multi-threaded stress tests for util::ThreadPool: many caller threads
// hammering Submit/ParallelFor/Wait concurrently. Primarily a TSan target
// (the CI thread-sanitizer job runs exactly this suite), but the invariants
// checked — every task runs exactly once, ParallelFor covers its range
// exactly once even with concurrent interference — hold in any build.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace spammass {
namespace {

using util::ThreadPool;

TEST(ThreadPoolStressTest, ConcurrentSubmittersAllTasksRun) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksPerSubmitter = 500;
  std::atomic<int> counter{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < kTasksPerSubmitter; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksPerSubmitter);
}

TEST(ThreadPoolStressTest, ConcurrentParallelForCallersCoverTheirRanges) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr uint64_t kRange = 2000;

  // Each caller thread owns a hit array; ParallelFor must cover exactly its
  // own range even while five other callers shard through the same pool.
  std::vector<std::vector<std::atomic<uint32_t>>> hits(kCallers);
  for (auto& h : hits) h = std::vector<std::atomic<uint32_t>>(kRange);

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int caller = 0; caller < kCallers; ++caller) {
    callers.emplace_back([&pool, &hits, caller] {
      for (int round = 0; round < 20; ++round) {
        pool.ParallelFor(kRange, [&hits, caller](uint64_t begin,
                                                 uint64_t end) {
          for (uint64_t i = begin; i < end; ++i) {
            hits[caller][i].fetch_add(1);
          }
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();

  for (int caller = 0; caller < kCallers; ++caller) {
    for (uint64_t i = 0; i < kRange; ++i) {
      ASSERT_EQ(hits[caller][i].load(), 20u)
          << "caller " << caller << " index " << i;
    }
  }
}

TEST(ThreadPoolStressTest, MixedSubmitParallelForWaitInterleavings) {
  ThreadPool pool(3);
  std::atomic<uint64_t> submit_done{0};
  std::atomic<uint64_t> parallel_done{0};
  std::atomic<bool> stop{false};

  // One thread spins Wait() the whole time: Wait must neither crash, nor
  // deadlock, nor return while claiming quiescence it can't observe.
  std::thread waiter([&pool, &stop] {
    while (!stop.load()) pool.Wait();
  });

  std::thread submitter([&pool, &submit_done] {
    for (int i = 0; i < 2000; ++i) {
      pool.Submit([&submit_done] { submit_done.fetch_add(1); });
      if (i % 128 == 0) pool.Wait();
    }
  });

  std::thread sharder([&pool, &parallel_done] {
    for (int round = 0; round < 200; ++round) {
      pool.ParallelFor(64, [&parallel_done](uint64_t begin, uint64_t end) {
        parallel_done.fetch_add(end - begin);
      });
    }
  });

  submitter.join();
  sharder.join();
  pool.Wait();
  stop.store(true);
  waiter.join();

  EXPECT_EQ(submit_done.load(), 2000u);
  EXPECT_EQ(parallel_done.load(), 200u * 64u);
}

TEST(ThreadPoolStressTest, WaitAfterQuiescencePicksUpNewBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 50; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    ASSERT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolStressTest, ManyShortLivedPools) {
  // Construction/destruction races: workers must drain and join cleanly
  // even when the pool dies immediately after the last Submit.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> counter{0};
    {
      ThreadPool pool(4);
      for (int i = 0; i < 32; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
      // No Wait: the destructor must drain the queue itself.
    }
    EXPECT_EQ(counter.load(), 32);
  }
}

}  // namespace
}  // namespace spammass
