// ShardPlan structure: boundary alignment and coverage, the
// sources-local remap (same-shard entries untouched, cross-shard entries
// pointing at the right ghost slot — edge positions never move, which is
// what the sharded sweep's bit-identity argument stands on), ghost-table
// ordering, the varint boundary-exchange round trip, the per-shard
// accounting, and the PickShardCount sizing heuristic.

#include "graph/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::ShardExchange;
using graph::ShardPlan;
using graph::WebGraph;

WebGraph MakeGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b(n);
  for (uint32_t e = 0; e < edges; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(n));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

/// Checks the invariants every plan must satisfy regardless of shape:
/// contiguous coverage of [0, n), aligned internal boundaries, ShardOf
/// agreement, the remap bijection, ghost tables ascending-unique-foreign,
/// and exchanges that exactly reproduce the ghost tables.
void ExpectValidPlan(const WebGraph& g, const ShardPlan& plan,
                     uint64_t alignment) {
  const NodeId n = g.num_nodes();
  ASSERT_EQ(plan.num_nodes(), n);
  ASSERT_EQ(plan.alignment(), alignment);
  ASSERT_GE(plan.num_shards(), 1u);

  // Ranges tile [0, n) in order; every internal boundary is aligned.
  NodeId cursor = 0;
  for (uint32_t s = 0; s < plan.num_shards(); ++s) {
    const auto& r = plan.ranges()[s];
    EXPECT_EQ(r.begin, cursor) << "gap before shard " << s;
    EXPECT_LE(r.begin, r.end);
    if (s > 0) {
      // A boundary is an aligned cut, except when clamping ran out of
      // aligned cut points and parked trailing shards (empty) at n — the
      // final reduction chunk ends at n anyway, so a cut there never
      // splits a chunk.
      EXPECT_TRUE(r.begin % alignment == 0 || r.begin == n)
          << "unaligned boundary " << r.begin;
    }
    cursor = r.end;
  }
  EXPECT_EQ(cursor, n);
  for (NodeId y = 0; y < n; ++y) {
    const uint32_t s = plan.ShardOf(y);
    ASSERT_LT(s, plan.num_shards());
    EXPECT_GE(y, plan.ranges()[s].begin);
    EXPECT_LT(y, plan.ranges()[s].end);
  }

  // The remap: same edge positions, same-shard ids verbatim, cross-shard
  // ids pointing into the consumer's own ghost slot range and decoding
  // back to the original global id.
  const auto sources = g.Sources();
  const auto local = plan.sources_local();
  ASSERT_EQ(local.size(), sources.size());
  const auto in_offsets = g.InOffsets();
  const auto ghosts = plan.ghost_nodes();
  for (uint32_t s = 0; s < plan.num_shards(); ++s) {
    const auto& r = plan.ranges()[s];
    const uint64_t slot_begin = plan.ghost_slot_begin(s);
    const uint64_t slot_end = slot_begin + plan.stats()[s].ghosts;
    for (NodeId y = r.begin; y < r.end; ++y) {
      for (uint64_t e = in_offsets[y]; e < in_offsets[y + 1]; ++e) {
        const NodeId global = sources[e];
        const NodeId mapped = local[e];
        if (plan.ShardOf(global) == s) {
          EXPECT_EQ(mapped, global) << "edge " << e;
        } else {
          ASSERT_GE(mapped, n) << "edge " << e;
          const uint64_t slot = static_cast<uint64_t>(mapped) - n;
          ASSERT_GE(slot, slot_begin) << "edge " << e;
          ASSERT_LT(slot, slot_end) << "edge " << e;
          EXPECT_EQ(ghosts[slot], global) << "edge " << e;
        }
      }
    }
  }

  // Ghost tables: ascending, unique, foreign to their shard.
  uint64_t total_ghosts = 0;
  for (uint32_t s = 0; s < plan.num_shards(); ++s) {
    const uint64_t begin = plan.ghost_slot_begin(s);
    const uint64_t count = plan.stats()[s].ghosts;
    total_ghosts += count;
    for (uint64_t i = 0; i < count; ++i) {
      const NodeId node = ghosts[begin + i];
      EXPECT_NE(plan.ShardOf(node), s) << "own node in ghost table";
      if (i > 0) EXPECT_LT(ghosts[begin + i - 1], node) << "not ascending";
    }
  }
  EXPECT_EQ(plan.total_ghosts(), total_ghosts);

  // Exchanges, concatenated per consumer in producer order, ARE the ghost
  // table — and each list survives the varint wire round trip.
  for (uint32_t s = 0; s < plan.num_shards(); ++s) {
    std::vector<NodeId> from_exchanges;
    // Exchange slot ids are extended-row ids: the ghost region starts at
    // row n, so shard s's slots begin at n + its ghost-table offset.
    uint64_t expected_slot = n + plan.ghost_slot_begin(s);
    uint32_t last_producer = 0;
    bool first = true;
    for (const ShardExchange& ex : plan.exchanges()) {
      if (ex.consumer != s) continue;
      EXPECT_NE(ex.producer, s);
      if (!first) EXPECT_GT(ex.producer, last_producer);
      first = false;
      last_producer = ex.producer;
      EXPECT_EQ(ex.slot_begin, expected_slot);
      EXPECT_FALSE(ex.nodes.empty()) << "empty exchange list not omitted";
      for (NodeId node : ex.nodes) {
        EXPECT_EQ(plan.ShardOf(node), ex.producer);
        from_exchanges.push_back(node);
      }
      expected_slot += ex.nodes.size();
      EXPECT_EQ(graph::DecodeExchangeList(ex.encoded, ex.nodes.size()),
                ex.nodes);
      EXPECT_EQ(graph::EncodeExchangeList(ex.nodes), ex.encoded);
    }
    const uint64_t begin = plan.ghost_slot_begin(s);
    ASSERT_EQ(from_exchanges.size(), plan.stats()[s].ghosts);
    for (uint64_t i = 0; i < from_exchanges.size(); ++i) {
      EXPECT_EQ(from_exchanges[i], ghosts[begin + i]);
    }
  }
}

TEST(ShardPlanTest, PartitionsWithAlignedBoundaries) {
  WebGraph g = MakeGraph(1000, 6000, /*seed=*/3);
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardPlan plan = ShardPlan::Build(g, shards, /*alignment=*/64);
    EXPECT_LE(plan.num_shards(), shards);
    ExpectValidPlan(g, plan, 64);
  }
}

TEST(ShardPlanTest, SingleShardIsTheIdentity) {
  WebGraph g = MakeGraph(400, 2000, /*seed=*/5);
  ShardPlan plan = ShardPlan::Build(g, 1, /*alignment=*/256);
  EXPECT_EQ(plan.num_shards(), 1u);
  EXPECT_EQ(plan.total_ghosts(), 0u);
  EXPECT_TRUE(plan.exchanges().empty());
  const auto sources = g.Sources();
  const auto local = plan.sources_local();
  ASSERT_EQ(local.size(), sources.size());
  EXPECT_TRUE(std::equal(local.begin(), local.end(), sources.begin()));
}

TEST(ShardPlanTest, ClampsWhenFewerAlignedCutsThanShards) {
  // 10 nodes at alignment 8 admits a single internal cut; asking for 8
  // shards must degrade gracefully, never produce unaligned boundaries.
  WebGraph g = MakeGraph(10, 40, /*seed=*/7);
  ShardPlan plan = ShardPlan::Build(g, 8, /*alignment=*/8);
  ExpectValidPlan(g, plan, 8);
  EXPECT_LE(plan.num_shards(), 8u);
}

TEST(ShardPlanTest, BalancesInEdges) {
  // Uniform random graph, generous alignment slack: no shard should carry
  // more than twice the ideal in-edge share.
  WebGraph g = MakeGraph(4096, 40000, /*seed=*/11);
  ShardPlan plan = ShardPlan::Build(g, 4, /*alignment=*/64);
  ASSERT_EQ(plan.num_shards(), 4u);
  const uint64_t ideal = g.num_edges() / 4;
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_LT(plan.stats()[s].in_edges, 2 * ideal) << "shard " << s;
  }
}

TEST(ShardPlanTest, StatsAccountForEveryEdgeAndByte) {
  WebGraph g = MakeGraph(800, 5000, /*seed=*/13);
  ShardPlan plan = ShardPlan::Build(g, 4, /*alignment=*/64);
  uint64_t in_edges = 0;
  std::vector<uint64_t> boundary_bytes(plan.num_shards(), 0);
  for (const ShardExchange& ex : plan.exchanges()) {
    boundary_bytes[ex.consumer] += ex.encoded.size();
  }
  uint64_t max_ws = 0;
  for (uint32_t s = 0; s < plan.num_shards(); ++s) {
    const auto& stats = plan.stats()[s];
    in_edges += stats.in_edges;
    EXPECT_EQ(stats.boundary_bytes, boundary_bytes[s]) << "shard " << s;
    if (plan.ranges()[s].size() > 0) EXPECT_GT(stats.working_set_bytes, 0u);
    max_ws = std::max(max_ws, stats.working_set_bytes);
  }
  EXPECT_EQ(in_edges, g.num_edges());
  EXPECT_EQ(plan.max_working_set_bytes(), max_ws);
}

TEST(ShardPlanTest, DeterministicAcrossRebuilds) {
  WebGraph g = MakeGraph(600, 3500, /*seed=*/17);
  ShardPlan a = ShardPlan::Build(g, 4, /*alignment=*/64);
  ShardPlan b = ShardPlan::Build(g, 4, /*alignment=*/64);
  ASSERT_EQ(a.num_shards(), b.num_shards());
  const auto al = a.sources_local();
  const auto bl = b.sources_local();
  EXPECT_TRUE(std::equal(al.begin(), al.end(), bl.begin(), bl.end()));
  ASSERT_EQ(a.exchanges().size(), b.exchanges().size());
  for (size_t i = 0; i < a.exchanges().size(); ++i) {
    EXPECT_EQ(a.exchanges()[i].encoded, b.exchanges()[i].encoded);
  }
}

TEST(ShardExchangeTest, EncodeDecodeRoundTrip) {
  const std::vector<std::vector<NodeId>> lists = {
      {},
      {0},
      {7},
      {0, 1, 2, 3},
      {5, 100, 101, 4000, 1u << 30},
  };
  for (const auto& nodes : lists) {
    const std::vector<uint8_t> encoded = graph::EncodeExchangeList(nodes);
    EXPECT_EQ(graph::DecodeExchangeList(encoded, nodes.size()), nodes);
  }
  // Dense ascending runs are the codec's best case: one byte per node
  // after the first.
  std::vector<NodeId> dense(1000);
  for (NodeId i = 0; i < 1000; ++i) dense[i] = 5000 + i;
  const std::vector<uint8_t> encoded = graph::EncodeExchangeList(dense);
  EXPECT_EQ(graph::DecodeExchangeList(encoded, dense.size()), dense);
  EXPECT_LE(encoded.size(), dense.size() + 4);
}

TEST(PickShardCountTest, ScalesWithCacheBudget) {
  WebGraph g = MakeGraph(4096, 30000, /*seed=*/19);
  // A budget bigger than the whole graph: no sharding.
  EXPECT_EQ(graph::PickShardCount(g, 1ull << 40), 1u);
  // A tiny budget forces splitting; the answer is a power of two ≤ 64.
  const uint32_t shards = graph::PickShardCount(g, 16 * 1024);
  EXPECT_GT(shards, 1u);
  EXPECT_LE(shards, 64u);
  EXPECT_EQ(shards & (shards - 1), 0u) << "not a power of two: " << shards;
  // A looser budget never wants more shards than a tighter one.
  EXPECT_LE(graph::PickShardCount(g, 256 * 1024), shards);
}

}  // namespace
}  // namespace spammass
