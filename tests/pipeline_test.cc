// Pipeline subsystem tests: graph-source format sniffing (including
// corrupt and ambiguous files), the detector registry, and the artifact
// cache — in particular that two detectors sharing base PageRank cost
// exactly one base solve.

#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "pipeline/context.h"
#include "pipeline/detector.h"
#include "pipeline/graph_source.h"
#include "synth/paper_graphs.h"
#include "util/logging.h"

namespace spammass {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary);
  f << content;
  ASSERT_TRUE(f.good());
}

graph::WebGraph SmallGraph() {
  graph::GraphBuilder builder;
  for (int i = 0; i < 6; ++i) {
    builder.AddNode("h" + std::to_string(i) + ".example.org");
  }
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 3);
  builder.AddEdge(0, 3);
  return builder.Build();
}

// ---- Format sniffing -----------------------------------------------------

TEST(GraphSourceSniffTest, DetectsTextEdgeList) {
  const std::string path = TempPath("sniff_text.edges");
  WriteFile(path, "# comment\n0 1\n1 2\n");
  auto format = pipeline::SniffGraphFormat(path);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(format.value(), pipeline::GraphFormat::kTextEdgeList);
}

TEST(GraphSourceSniffTest, DetectsBinaryMagic) {
  const std::string path = TempPath("sniff_bin.smwg");
  ASSERT_TRUE(graph::WriteBinary(SmallGraph(), path).ok());
  auto format = pipeline::SniffGraphFormat(path);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(format.value(), pipeline::GraphFormat::kBinary);
}

TEST(GraphSourceSniffTest, RejectsEmptyFile) {
  const std::string path = TempPath("sniff_empty.edges");
  WriteFile(path, "");
  EXPECT_FALSE(pipeline::SniffGraphFormat(path).ok());
}

TEST(GraphSourceSniffTest, RejectsMissingFile) {
  EXPECT_FALSE(pipeline::SniffGraphFormat("/nonexistent/nope.edges").ok());
}

TEST(GraphSourceSniffTest, RejectsAmbiguousBinaryGarbage) {
  // Neither the SMWG magic nor printable text: a corrupt/truncated binary
  // must not fall through to the text parser.
  const std::string path = TempPath("sniff_garbage.bin");
  WriteFile(path, std::string("\x01\x02\xff\xfe garbage", 12));
  auto format = pipeline::SniffGraphFormat(path);
  EXPECT_FALSE(format.ok());
  EXPECT_EQ(format.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphSourceSniffTest, CorruptMagicPrefixIsNotBinary) {
  // "SMW" + junk: not the magic, not text — rejected, not misparsed.
  const std::string path = TempPath("sniff_nearmiss.bin");
  WriteFile(path, std::string("SMW\x00\x01\x02", 6));
  EXPECT_FALSE(pipeline::SniffGraphFormat(path).ok());
}

// ---- GraphSource loading -------------------------------------------------

TEST(GraphSourceTest, TextAndBinaryLoadIdenticalGraphs) {
  graph::WebGraph g = SmallGraph();
  const std::string text_path = TempPath("source_roundtrip.edges");
  const std::string bin_path = TempPath("source_roundtrip.smwg");
  ASSERT_TRUE(graph::WriteEdgeListText(g, text_path).ok());
  ASSERT_TRUE(graph::WriteBinary(g, bin_path).ok());

  pipeline::GraphSource text_source = pipeline::GraphSource::FromFile(text_path);
  pipeline::GraphSource bin_source = pipeline::GraphSource::FromFile(bin_path);
  auto text = text_source.Load();
  auto bin = bin_source.Load();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  ASSERT_TRUE(bin.ok()) << bin.status().ToString();
  EXPECT_EQ(text.value().format, pipeline::GraphFormat::kTextEdgeList);
  EXPECT_EQ(bin.value().format, pipeline::GraphFormat::kBinary);
  ASSERT_EQ(text.value().graph().num_nodes(), bin.value().graph().num_nodes());
  EXPECT_EQ(text.value().graph().num_edges(), bin.value().graph().num_edges());
}

TEST(GraphSourceTest, ScenarioCarriesLabelsAndCore) {
  pipeline::GraphSource source = pipeline::GraphSource::Scenario(0.02, 5);
  auto loaded = source.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().is_synthetic);
  EXPECT_TRUE(loaded.value().has_labels);
  EXPECT_FALSE(loaded.value().good_core.empty());
  // Synthetic sources are re-loadable.
  EXPECT_TRUE(source.Load().ok());
}

TEST(GraphSourceTest, InMemorySourceIsOneShot) {
  pipeline::GraphSource source =
      pipeline::GraphSource::FromGraph(SmallGraph(), "test graph");
  auto first = source.Load();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().format, pipeline::GraphFormat::kInMemory);
  auto second = source.Load();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(GraphSourceTest, RejectsOutOfRangeGoodCore) {
  pipeline::GraphSource source =
      pipeline::GraphSource::FromGraph(SmallGraph());
  source.WithGoodCore({0, 99});
  EXPECT_FALSE(source.Load().ok());
}

// ---- Detector registry ---------------------------------------------------

TEST(DetectorRegistryTest, KnowsAllBuiltins) {
  auto names = pipeline::DetectorRegistry::Global().Names();
  for (const char* expected :
       {"spam_mass", "trustrank", "naive_scheme1", "naive_scheme2",
        "degree_outlier"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing builtin detector " << expected;
  }
}

TEST(DetectorRegistryTest, UnknownDetectorErrorNamesTheRegistry) {
  auto detector = pipeline::DetectorRegistry::Global().Create("nope");
  ASSERT_FALSE(detector.ok());
  EXPECT_EQ(detector.status().code(), util::StatusCode::kInvalidArgument);
  // The error lists what IS registered, so a typo is self-diagnosing.
  EXPECT_NE(detector.status().ToString().find("spam_mass"),
            std::string::npos);
}

TEST(DetectorRegistryTest, RunDetectorsFailsFastOnUnknownName) {
  pipeline::GraphSource source = pipeline::GraphSource::Scenario(0.02, 5);
  pipeline::PipelineConfig config;
  auto run = pipeline::RunDetectors(source, config, {"spam_mass", "typo"});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), util::StatusCode::kInvalidArgument);
}

// ---- Artifact cache ------------------------------------------------------

TEST(PipelineContextTest, TwoDetectorsShareOneBasePageRankSolve) {
  pipeline::GraphSource source = pipeline::GraphSource::Scenario(0.02, 7);
  auto loaded = source.Load();
  ASSERT_TRUE(loaded.ok());
  pipeline::PipelineConfig config;
  pipeline::PipelineContext context(loaded.value(), config);

  // Spam mass and TrustRank both need base PageRank; preparing the union
  // of their needs must run the base solve exactly once.
  auto spam_mass = pipeline::DetectorRegistry::Global().Create("spam_mass");
  auto trustrank = pipeline::DetectorRegistry::Global().Create("trustrank");
  ASSERT_TRUE(spam_mass.ok() && trustrank.ok());
  pipeline::ArtifactNeeds needs =
      spam_mass.value()->Needs(context).Union(trustrank.value()->Needs(context));
  ASSERT_TRUE(context.Prepare(needs).ok());
  EXPECT_EQ(context.base_pagerank_solves(), 1u);

  auto mass_output = spam_mass.value()->Run(context);
  auto trust_output = trustrank.value()->Run(context);
  ASSERT_TRUE(mass_output.ok()) << mass_output.status().ToString();
  ASSERT_TRUE(trust_output.ok()) << trust_output.status().ToString();
  // Running the detectors consumes cached artifacts — still one solve.
  EXPECT_EQ(context.base_pagerank_solves(), 1u);
}

TEST(PipelineContextTest, PrepareIsIdempotent) {
  pipeline::GraphSource source = pipeline::GraphSource::Scenario(0.02, 7);
  auto loaded = source.Load();
  ASSERT_TRUE(loaded.ok());
  pipeline::PipelineConfig config;
  pipeline::PipelineContext context(loaded.value(), config);
  pipeline::ArtifactNeeds needs;
  needs.mass_estimates = true;
  ASSERT_TRUE(context.Prepare(needs).ok());
  const uint64_t solves_after_first = context.total_solves();
  // Re-preparing the same needs computes nothing new.
  ASSERT_TRUE(context.Prepare(needs).ok());
  EXPECT_EQ(context.total_solves(), solves_after_first);
  // Widening the needs only fills the gap (trust propagation), never
  // re-runs the base or core solves.
  needs.trustrank = true;
  ASSERT_TRUE(context.Prepare(needs).ok());
  EXPECT_EQ(context.base_pagerank_solves(), 1u);
}

TEST(PipelineContextTest, MassNeedsGoodCore) {
  pipeline::GraphSource source =
      pipeline::GraphSource::FromGraph(SmallGraph());
  auto loaded = source.Load();
  ASSERT_TRUE(loaded.ok());
  pipeline::PipelineConfig config;
  pipeline::PipelineContext context(loaded.value(), config);
  pipeline::ArtifactNeeds needs;
  needs.mass_estimates = true;
  util::Status status = context.Prepare(needs);
  ASSERT_FALSE(status.ok());
  // Same error the seed implementation (EstimateSpamMass) raises.
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("good core"), std::string::npos);
}

TEST(PipelineContextTest, NaiveSchemesRequireLabels) {
  pipeline::GraphSource source =
      pipeline::GraphSource::FromGraph(SmallGraph());
  source.WithGoodCore({0, 1});
  auto loaded = source.Load();
  ASSERT_TRUE(loaded.ok());
  pipeline::PipelineConfig config;
  pipeline::PipelineContext context(loaded.value(), config);
  auto detector = pipeline::DetectorRegistry::Global().Create("naive_scheme1");
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE(context.Prepare(detector.value()->Needs(context)).ok());
  auto output = detector.value()->Run(context);
  ASSERT_FALSE(output.ok());
  EXPECT_EQ(output.status().code(), util::StatusCode::kFailedPrecondition);
}

// ---- RunDetectors + manifest --------------------------------------------

TEST(RunDetectorsTest, ProducesManifestAndOutputs) {
  pipeline::GraphSource source = pipeline::GraphSource::Scenario(0.02, 11);
  pipeline::PipelineConfig config;
  auto run =
      pipeline::RunDetectors(source, config, {"spam_mass", "trustrank"});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().detectors.size(), 2u);
  EXPECT_EQ(run.value().base_pagerank_solves, 1u);
  EXPECT_GT(run.value().total_solves, 1u);
  // The manifest is one JSON object carrying the headline fields.
  const std::string& json = run.value().manifest_json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* needle :
       {"\"schema_version\":3", "\"base_pagerank_solves\":1",
        "\"spam_mass\"", "\"trustrank\"", "\"stages\"", "\"solver\"",
        "\"convergence\"", "\"metrics\"", "\"pagerank.solves\""}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "manifest missing " << needle << "\n" << json;
  }
}

TEST(RunDetectorsTest, Figure2SpamMassMatchesPaper) {
  // The paper's Figure 2 example through the full pipeline path: the
  // known spam candidates surface through DetectorOutput.
  synth::Figure2Graph fig = synth::MakeFigure2Graph();
  pipeline::GraphSource source =
      pipeline::GraphSource::FromGraph(std::move(fig.graph), "figure 2");
  source.WithGoodCore(fig.good_core);
  pipeline::PipelineConfig config;
  config.solver.tolerance = 1e-14;
  config.solver.max_iterations = 2000;
  config.scale_core_jump = false;
  config.detection.scaled_pagerank_threshold = 1.5;
  config.detection.relative_mass_threshold = 0.5;
  auto run = pipeline::RunDetectors(source, config, {"spam_mass"});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run.value().detectors.size(), 1u);
  const pipeline::DetectorOutput& output = run.value().detectors[0];
  EXPECT_EQ(output.flagged_count, 3u);  // x, s0, and the g2 false positive
}

}  // namespace
}  // namespace spammass
