// End-to-end test of the spammass_cli binary: generate → stats → pagerank
// → mass → detect → sites over real files. The binary path is injected by
// CMake (SPAMMASS_CLI_PATH).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "json_test_util.h"

namespace spammass {
namespace {

#ifndef SPAMMASS_CLI_PATH
#define SPAMMASS_CLI_PATH ""
#endif

class CliTest : public ::testing::Test {
 protected:
  static std::string Dir() { return testing::TempDir() + "/cli_test"; }

  static void SetUpTestSuite() {
    std::string mkdir = "mkdir -p " + Dir();
    ASSERT_EQ(std::system(mkdir.c_str()), 0);
  }

  /// Runs the CLI with the given arguments; returns the exit code.
  int Run(const std::string& args) {
    std::string cmd = std::string(SPAMMASS_CLI_PATH) + " " + args +
                      " > " + Dir() + "/stdout.txt 2>" + Dir() +
                      "/stderr.txt";
    int rc = std::system(cmd.c_str());
    return WEXITSTATUS(rc);
  }

  std::string Stdout() {
    std::ifstream f(Dir() + "/stdout.txt");
    return std::string((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  }

  bool FileExists(const std::string& name) {
    std::ifstream f(Dir() + "/" + name);
    return f.good();
  }

  std::string ReadFile(const std::string& name) {
    std::ifstream f(Dir() + "/" + name);
    return std::string((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  }
};

TEST_F(CliTest, FullWorkflow) {
  ASSERT_STRNE(SPAMMASS_CLI_PATH, "");
  const std::string d = Dir();

  // generate
  ASSERT_EQ(Run("generate --scale 0.03 --seed 21 --out-edges " + d +
                "/web.edges --out-hosts " + d + "/web.hosts --out-labels " +
                d + "/web.labels --out-core " + d + "/good.core"),
            0);
  EXPECT_TRUE(FileExists("web.edges"));
  EXPECT_TRUE(FileExists("web.hosts"));
  EXPECT_TRUE(FileExists("web.labels"));
  EXPECT_TRUE(FileExists("good.core"));

  // stats
  ASSERT_EQ(Run("stats --edges " + d + "/web.edges"), 0);
  EXPECT_NE(Stdout().find("hosts"), std::string::npos);
  EXPECT_NE(Stdout().find("no outlinks"), std::string::npos);

  // pagerank to CSV
  ASSERT_EQ(Run("pagerank --edges " + d + "/web.edges --out " + d +
                "/pr.csv"),
            0);
  EXPECT_TRUE(FileExists("pr.csv"));

  // mass to CSV
  ASSERT_EQ(Run("mass --edges " + d + "/web.edges --core " + d +
                "/good.core --out " + d + "/mass.csv"),
            0);
  EXPECT_TRUE(FileExists("mass.csv"));
  {
    std::ifstream f(d + "/mass.csv");
    std::string header;
    std::getline(f, header);
    EXPECT_EQ(header, "node,scaled_pagerank,scaled_abs_mass,rel_mass");
  }

  // detect with ground truth
  ASSERT_EQ(Run("detect --edges " + d + "/web.edges --core " + d +
                "/good.core --labels " + d + "/web.labels --hosts " + d +
                "/web.hosts --tau 0.9 --rho 10 --out " + d + "/cand.csv"),
            0);
  EXPECT_TRUE(FileExists("cand.csv"));
  EXPECT_NE(Stdout().find("spam candidates"), std::string::npos);
  EXPECT_NE(Stdout().find("AUC over T"), std::string::npos);

  // sites aggregation
  ASSERT_EQ(Run("sites --edges " + d + "/web.edges --hosts " + d +
                "/web.hosts --out-edges " + d + "/sites.edges"),
            0);
  EXPECT_TRUE(FileExists("sites.edges"));
  EXPECT_NE(Stdout().find("aggregated"), std::string::npos);
}

TEST_F(CliTest, RunSubcommandWritesManifestForTextAndBinary) {
  ASSERT_STRNE(SPAMMASS_CLI_PATH, "");
  const std::string d = Dir();

  // Generate the same graph in both on-disk formats.
  ASSERT_EQ(Run("generate --scale 0.03 --seed 33 --out-edges " + d +
                "/run.edges --out-binary " + d + "/run.smwg --out-labels " +
                d + "/run.labels --out-core " + d + "/run.core"),
            0);

  // One invocation, two detectors, both formats; sniffing picks the loader.
  ASSERT_EQ(Run("run --graph " + d + "/run.edges," + d +
                "/run.smwg --detectors spam_mass,trustrank --core " + d +
                "/run.core --labels " + d + "/run.labels --manifest " + d +
                "/manifest.json"),
            0);
  ASSERT_TRUE(FileExists("manifest.json"));
  EXPECT_NE(Stdout().find("base PageRank solves: 1"), std::string::npos);

  // The manifest is valid JSON with the expected structure: a wrapper
  // holding one run per graph, each echoing config and solver counters.
  std::ifstream f(d + "/manifest.json");
  std::string json((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(json.front(), '{');
  for (const char* needle :
       {"\"schema_version\":3", "\"tool\":\"spammass_cli run\"", "\"runs\":[",
        "\"format\":\"text\"", "\"format\":\"binary\"",
        "\"base_pagerank_solves\":1", "\"spam_mass\"", "\"trustrank\"",
        "\"stages\"", "\"iterations\"", "\"convergence\"", "\"resources\"",
        "\"metrics\""}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "manifest missing " << needle << "\n" << json;
  }
  // Round-trip sanity without a JSON parser in the test: balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(CliTest, ObsOutputsMatchManifestAndAreParseable) {
  ASSERT_STRNE(SPAMMASS_CLI_PATH, "");
  const std::string d = Dir();

  // A parallel Jacobi run with convergence tracking and both telemetry
  // outputs. --threads 2 makes the thread pool execute tasks, so the
  // trace must contain pool_task spans on named worker tracks.
  ASSERT_EQ(Run("run --graph synthetic:0.02:5 --detectors "
                "spam_mass,trustrank --threads 2 --method jacobi "
                "--record-convergence --manifest " + d +
                "/obs_manifest.json --trace-out " + d +
                "/obs_trace.json --metrics-out " + d + "/obs_metrics.json"),
            0);

  testutil::JsonValue trace, metrics, manifest;
  std::string error;
  ASSERT_TRUE(testutil::JsonParser::Parse(ReadFile("obs_trace.json"),
                                          &trace, &error)) << error;
  ASSERT_TRUE(testutil::JsonParser::Parse(ReadFile("obs_metrics.json"),
                                          &metrics, &error)) << error;
  ASSERT_TRUE(testutil::JsonParser::Parse(ReadFile("obs_manifest.json"),
                                          &manifest, &error)) << error;

  // Trace: Chrome trace-event JSON with solver and thread-pool spans.
  EXPECT_EQ(trace["displayTimeUnit"].string, "ms");
  size_t solver_spans = 0, pool_spans = 0, stage_spans = 0;
  for (const testutil::JsonValue& event : trace["traceEvents"].array) {
    if (event["ph"].string != "X") continue;
    solver_spans += event["name"].string == "pagerank.solve";
    pool_spans += event["name"].string == "pool_task";
    stage_spans += event["name"].string == "stage";
  }
  EXPECT_GT(solver_spans, 0u);
  EXPECT_GT(pool_spans, 0u);
  EXPECT_GT(stage_spans, 0u);

  // Metrics: the snapshot's solve counter equals the manifest's solve
  // count — the counters increment at exactly the workspace RecordSolve
  // sites, so any drift is a bug.
  const testutil::JsonValue& run = manifest["runs"][0];
  EXPECT_EQ(manifest["schema_version"].number, 3);
  EXPECT_EQ(run["schema_version"].number, 3);
  const double total_solves = run["solver_runs"]["total_solves"].number;
  EXPECT_GT(total_solves, 0);
  EXPECT_EQ(metrics["counters"]["pagerank.solves"].number, total_solves);
  EXPECT_EQ(run["metrics"]["counters"]["pagerank.solves"].number,
            total_solves);
  EXPECT_GT(metrics["counters"]["threadpool.tasks"].number, 0);

  // Convergence: --record-convergence produced a residual curve per solve
  // whose length matches the reported iteration count.
  const testutil::JsonValue& convergence = run["convergence"];
  ASSERT_TRUE(convergence.is_array());
  ASSERT_GT(convergence.array.size(), 0u);
  for (const testutil::JsonValue& solve : convergence.array) {
    ASSERT_TRUE(solve.Has("residual_curve")) << solve["name"].string;
    EXPECT_EQ(solve["residual_curve"].array.size(),
              solve["iterations"].number)
        << solve["name"].string;
  }
}

TEST_F(CliTest, MetricsFormatPromRoundTrip) {
  ASSERT_STRNE(SPAMMASS_CLI_PATH, "");
  const std::string d = Dir();

  // --out-paged writes the v2.2 container that --mmap requires.
  ASSERT_EQ(Run("generate --scale 0.03 --seed 55 --out-paged " + d +
                "/prom.smwg --out-core " + d + "/prom.core"),
            0);
  // The acceptance path: a mapped sharded run exporting Prometheus text.
  ASSERT_EQ(Run("run --graph " + d + "/prom.smwg --mmap --method jacobi "
                "--threads 2 --shards 2 "
                "--detectors spam_mass --core " + d + "/prom.core "
                "--manifest " + d + "/prom_manifest.json "
                "--metrics-format prom --metrics-out " + d +
                "/metrics.prom"),
            0);

  const std::string prom = ReadFile("metrics.prom");
  ASSERT_FALSE(prom.empty());
  EXPECT_EQ(prom.back(), '\n');
  // Counters are typed and suffixed; the solver path must have counted.
  for (const char* needle :
       {"# TYPE pagerank_solves_total counter", "pagerank_solves_total ",
        "# TYPE graph_mmap_mapped_bytes gauge",
        "graph_mmap_resident_bytes ",
        "graph_mmap_resident_bytes_targets ",
        "pagerank_shard_boundary_bytes_total ",
        "pagerank_shard_ghost_gathers_total ",
        "pagerank_shard_sweep_seconds_bucket{le=\"+Inf\"} ",
        "process_resource_samples_total "}) {
    EXPECT_NE(prom.find(needle), std::string::npos)
        << "prom output missing " << needle << "\n" << prom;
  }
#if defined(__linux__)
  // Resource groups are present (not zero, not faked) on Linux.
  for (const char* needle :
       {"# TYPE process_rss_bytes gauge", "process_rss_bytes ",
        "# TYPE process_major_faults_total counter"}) {
    EXPECT_NE(prom.find(needle), std::string::npos)
        << "prom output missing " << needle << "\n" << prom;
  }
#endif

  // Cross-check one value against the JSON manifest: the prom counter
  // line for pagerank.solves must equal the manifest's total_solves.
  testutil::JsonValue manifest;
  std::string error;
  ASSERT_TRUE(testutil::JsonParser::Parse(ReadFile("prom_manifest.json"),
                                          &manifest, &error)) << error;
  const double total_solves =
      manifest["runs"][0]["solver_runs"]["total_solves"].number;
  const size_t at = prom.find("\npagerank_solves_total ");
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(std::stod(prom.substr(at + 23)), total_solves);
  // Mapped-vs-resident shows up in the manifest's resources block too.
  EXPECT_NE(ReadFile("prom_manifest.json").find("\"mmap\":{\"mapped_bytes\""),
            std::string::npos);
}

TEST_F(CliTest, MetricsFormatRejectsUnknown) {
  const std::string d = Dir();
  EXPECT_NE(Run("stats --edges " + d + "/web.edges --metrics-format xml"),
            0);
  EXPECT_NE(ReadFile("stderr.txt").find("metrics-format"),
            std::string::npos);
}

TEST_F(CliTest, MetricsOutUnwritablePathFailsWithPath) {
  // A parent "directory" that is actually a regular file defeats the
  // parent-creation step for any user (including root, unlike chmod 000).
  const std::string d = Dir();
  ASSERT_EQ(Run("generate --scale 0.02 --seed 5 --out-edges " + d +
                "/uw.edges --out-core " + d + "/uw.core"),
            0);
  { std::ofstream blocker(d + "/blocker"); blocker << "x"; }
  EXPECT_NE(Run("stats --edges " + d + "/uw.edges --metrics-format prom "
                "--metrics-out " + d + "/blocker/metrics.prom"),
            0);
  EXPECT_NE(ReadFile("stderr.txt").find("blocker"), std::string::npos);
}

TEST_F(CliTest, RunRejectsUnknownDetector) {
  const std::string d = Dir();
  ASSERT_EQ(Run("generate --scale 0.02 --seed 3 --out-edges " + d +
                "/u.edges --out-core " + d + "/u.core"),
            0);
  EXPECT_NE(Run("run --graph " + d + "/u.edges --core " + d +
                "/u.core --detectors not_a_detector"),
            0);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_NE(Run("frobnicate"), 0);
}

TEST_F(CliTest, UnknownFlagFails) {
  EXPECT_NE(Run("stats --bogus-flag 3"), 0);
}

TEST_F(CliTest, HelpSucceeds) {
  EXPECT_EQ(Run("generate --help"), 0);
}

TEST_F(CliTest, MissingInputFileFails) {
  EXPECT_NE(Run("stats --edges /nonexistent/nope.edges"), 0);
}

}  // namespace
}  // namespace spammass
