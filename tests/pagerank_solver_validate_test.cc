// Tests of the PageRank invariant validators (pagerank/solver_validate.h):
// genuine solver outputs pass; corrupted jump vectors, score vectors, and
// broken p = p_core + residual decompositions are rejected.

#include "pagerank/solver_validate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "graph/graph_builder.h"
#include "pagerank/jump_vector.h"
#include "pagerank/solver.h"
#include "util/status.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::WebGraph;
using pagerank::JumpVector;
using pagerank::PageRankResult;
using pagerank::SolverOptions;
using pagerank::ValidateJumpValues;
using pagerank::ValidateJumpVector;
using pagerank::ValidateMassDecomposition;
using pagerank::ValidateSolverResult;
using util::StatusCode;

WebGraph MakeChain() {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 0);
  return b.Build();
}

TEST(ValidateJumpTest, UniformVectorIsStochastic) {
  JumpVector v = JumpVector::Uniform(10);
  EXPECT_TRUE(ValidateJumpVector(v).ok());
  EXPECT_TRUE(ValidateJumpVector(v, /*require_stochastic=*/true).ok());
}

TEST(ValidateJumpTest, CoreVectorIsValidButNotStochastic) {
  JumpVector v = JumpVector::Core(10, {1, 4});  // norm = 2/10
  EXPECT_TRUE(ValidateJumpVector(v).ok());
  auto st = ValidateJumpVector(v, /*require_stochastic=*/true);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("not stochastic"), std::string::npos);
}

TEST(ValidateJumpTest, RejectsEmptyVector) {
  EXPECT_FALSE(ValidateJumpValues({}).ok());
}

TEST(ValidateJumpTest, RejectsNegativeEntry) {
  auto st = ValidateJumpValues({0.5, -0.1, 0.6});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("negative"), std::string::npos);
}

TEST(ValidateJumpTest, RejectsNonFiniteEntry) {
  auto st =
      ValidateJumpValues({0.5, std::numeric_limits<double>::quiet_NaN()});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("finite"), std::string::npos);
}

TEST(ValidateJumpTest, RejectsZeroNorm) {
  auto st = ValidateJumpValues({0.0, 0.0, 0.0});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("zero"), std::string::npos);
}

TEST(ValidateJumpTest, RejectsNormAboveOne) {
  auto st = ValidateJumpValues({0.8, 0.8});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("exceeds 1"), std::string::npos);
}

class ValidateSolverResultTest : public ::testing::Test {
 protected:
  ValidateSolverResultTest() : graph_(MakeChain()) {}

  /// Solves on the chain graph and returns a result known to be genuine.
  PageRankResult Solve(const SolverOptions& options) {
    auto r = pagerank::ComputeUniformPageRank(graph_, options);
    EXPECT_TRUE(r.ok());
    return r.value();
  }

  WebGraph graph_;
};

TEST_F(ValidateSolverResultTest, GenuineSolutionsPassForEveryMethod) {
  for (auto method :
       {pagerank::Method::kJacobi, pagerank::Method::kGaussSeidel,
        pagerank::Method::kSor, pagerank::Method::kPowerIteration}) {
    SolverOptions options;
    options.method = method;
    PageRankResult result = Solve(options);
    JumpVector v = JumpVector::Uniform(graph_.num_nodes());
    EXPECT_TRUE(ValidateSolverResult(graph_, v, options, result).ok());
  }
}

TEST_F(ValidateSolverResultTest, RejectsWrongDimension) {
  SolverOptions options;
  PageRankResult result = Solve(options);
  result.scores.pop_back();
  JumpVector v = JumpVector::Uniform(graph_.num_nodes());
  auto st = ValidateSolverResult(graph_, v, options, result);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("scores"), std::string::npos);
}

TEST_F(ValidateSolverResultTest, RejectsNegativeScore) {
  SolverOptions options;
  PageRankResult result = Solve(options);
  result.scores[1] = -0.5;
  JumpVector v = JumpVector::Uniform(graph_.num_nodes());
  auto st = ValidateSolverResult(graph_, v, options, result);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("negative"), std::string::npos);
}

TEST_F(ValidateSolverResultTest, RejectsNonFiniteScore) {
  SolverOptions options;
  PageRankResult result = Solve(options);
  result.scores[0] = std::numeric_limits<double>::infinity();
  JumpVector v = JumpVector::Uniform(graph_.num_nodes());
  EXPECT_FALSE(ValidateSolverResult(graph_, v, options, result).ok());
}

TEST_F(ValidateSolverResultTest, RejectsCreatedMass) {
  SolverOptions options;
  PageRankResult result = Solve(options);
  // Inflate the solution: total mass beyond ||v|| means the solver
  // "created" PageRank, which Eq. 3 forbids.
  for (double& p : result.scores) p += 1.0;
  JumpVector v = JumpVector::Uniform(graph_.num_nodes());
  auto st = ValidateSolverResult(graph_, v, options, result);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("mass"), std::string::npos);
}

TEST_F(ValidateSolverResultTest, RejectsVanishedMass) {
  SolverOptions options;
  PageRankResult result = Solve(options);
  // Deflate below the (1-c)||v|| teleportation floor.
  for (double& p : result.scores) p *= 1e-3;
  JumpVector v = JumpVector::Uniform(graph_.num_nodes());
  auto st = ValidateSolverResult(graph_, v, options, result);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("floor"), std::string::npos);
}

TEST(ValidateMassDecompositionTest, ConsistentDecompositionPasses) {
  std::vector<double> p = {0.4, 0.3, 0.3};
  std::vector<double> core = {0.35, 0.1, 0.25};
  std::vector<double> residual = {0.05, 0.2, 0.05};
  EXPECT_TRUE(ValidateMassDecomposition(p, core, residual).ok());
}

TEST(ValidateMassDecompositionTest, NegativeResidualIsAllowed) {
  // Section 3.5: M̃ can legitimately go negative; only p = p' + M̃ matters.
  std::vector<double> p = {0.4};
  std::vector<double> core = {0.5};
  std::vector<double> residual = {-0.1};
  EXPECT_TRUE(ValidateMassDecomposition(p, core, residual).ok());
}

TEST(ValidateMassDecompositionTest, RejectsSizeMismatch) {
  std::vector<double> p = {0.4, 0.6};
  std::vector<double> core = {0.4};
  std::vector<double> residual = {0.0, 0.2};
  auto st = ValidateMassDecomposition(p, core, residual);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sizes disagree"), std::string::npos);
}

TEST(ValidateMassDecompositionTest, RejectsBrokenSum) {
  std::vector<double> p = {0.4, 0.6};
  std::vector<double> core = {0.3, 0.3};
  std::vector<double> residual = {0.1, 0.2};  // 0.3 + 0.2 != 0.6
  auto st = ValidateMassDecomposition(p, core, residual);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("node 1"), std::string::npos);
}

TEST(ValidateMassDecompositionTest, EndToEndEstimatesSatisfyDecomposition) {
  WebGraph g = MakeChain();
  // The library wires this DCHECK internally; re-assert it through the
  // public API so release builds cover it too.
  auto solved = pagerank::ComputeUniformPageRank(g, SolverOptions());
  ASSERT_TRUE(solved.ok());
  const std::vector<double>& p = solved.value().scores;
  std::vector<double> core(p.size(), 0.0);
  std::vector<double> residual = p;
  EXPECT_TRUE(ValidateMassDecomposition(p, core, residual).ok());
}

}  // namespace
}  // namespace spammass
