// Tests of PageRank contribution computations (Section 3.2, Theorems 1-2).

#include "pagerank/contribution.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "pagerank/solver.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::ComputeNodeContribution;
using pagerank::ComputeSetContribution;
using pagerank::ComputeUniformPageRank;
using pagerank::LinkContribution;
using pagerank::SolverOptions;

SolverOptions Precise() {
  SolverOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 5000;
  return opt;
}

constexpr double kC = 0.85;

TEST(ContributionTest, SelfContributionWithoutCircuits) {
  // A node not on any circuit contributes exactly (1−c)·v_x to itself.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  WebGraph g = b.Build();
  auto q = ComputeNodeContribution(g, 0, Precise());
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value().scores[0], (1 - kC) / 3.0, 1e-12);
}

TEST(ContributionTest, SelfContributionWithCircuit) {
  // On a 2-cycle, x's contribution to itself includes the circuit walks:
  // q_x^x = (1−c)v_x · (1 + c² + c⁴ + ...) = (1−c)v_x / (1−c²).
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  WebGraph g = b.Build();
  auto q = ComputeNodeContribution(g, 0, Precise());
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value().scores[0], (1 - kC) / 2.0 / (1 - kC * kC), 1e-12);
  // And to the neighbor: one extra step of damping c.
  EXPECT_NEAR(q.value().scores[1], kC * (1 - kC) / 2.0 / (1 - kC * kC),
              1e-12);
}

TEST(ContributionTest, UnconnectedNodesContributeNothing) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  WebGraph g = b.Build();
  auto q = ComputeNodeContribution(g, 0, Precise());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().scores[2], 0.0);
  EXPECT_EQ(q.value().scores[3], 0.0);
}

TEST(ContributionTest, ContributionSplitsByWalkLength) {
  // Chain 0→1→2: q_2^0 = c²·(1−c)·v_0.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  WebGraph g = b.Build();
  auto q = ComputeNodeContribution(g, 0, Precise());
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value().scores[2], kC * kC * (1 - kC) / 3.0, 1e-12);
}

TEST(ContributionTest, WalkWeightUsesOutDegrees) {
  // 0 links to both 1 and 2, so the walk 0→1 has weight 1/2:
  // q_1^0 = c·(1/2)·(1−c)·v_0.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  WebGraph g = b.Build();
  auto q = ComputeNodeContribution(g, 0, Precise());
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q.value().scores[1], kC * 0.5 * (1 - kC) / 3.0, 1e-12);
}

TEST(ContributionTest, EmptySetContributesZero) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  auto q = ComputeSetContribution(g, {}, Precise());
  ASSERT_TRUE(q.ok());
  for (double x : q.value().scores) EXPECT_EQ(x, 0.0);
}

TEST(ContributionTest, SetContributionIsSumOfNodeContributions) {
  GraphBuilder b(5);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  b.AddEdge(4, 2);
  WebGraph g = b.Build();
  auto q01 = ComputeSetContribution(g, {0, 1}, Precise());
  auto q0 = ComputeNodeContribution(g, 0, Precise());
  auto q1 = ComputeNodeContribution(g, 1, Precise());
  ASSERT_TRUE(q01.ok() && q0.ok() && q1.ok());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_NEAR(q01.value().scores[x],
                q0.value().scores[x] + q1.value().scores[x], 1e-12);
  }
}

TEST(ContributionTest, FullSetContributionEqualsPageRank) {
  // Theorem 1 with U = V.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(3, 1);
  WebGraph g = b.Build();
  std::vector<NodeId> all = {0, 1, 2, 3};
  auto q = ComputeSetContribution(g, all, Precise());
  auto p = ComputeUniformPageRank(g, Precise());
  ASSERT_TRUE(q.ok() && p.ok());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_NEAR(q.value().scores[x], p.value().scores[x], 1e-12);
  }
}

TEST(ContributionTest, OutOfRangeNodeRejected) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  EXPECT_FALSE(ComputeNodeContribution(g, 7, Precise()).ok());
}

TEST(LinkContributionTest, MissingLinkRejected) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  auto r = LinkContribution(g, 1, 0, Precise());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotFound);
}

TEST(LinkContributionTest, SingleInlinkContribution) {
  // Figure 1 reasoning: the link g0→x contributes c·(1−c)/n when g0 has
  // PageRank (1−c)/n and outdegree 1.
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  auto r = LinkContribution(g, 0, 1, Precise());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), kC * (1 - kC) / 2.0, 1e-12);
}

TEST(LinkContributionTest, BoostedLinkContributesMore) {
  // Figure 1 with k = 3: the s0→x link contributes (c+3c²)(1−c)/n, more
  // than a plain good link's c(1−c)/n.
  GraphBuilder b(7);  // x=0, g=1, s0=2, s1..s3=3..5, spare=6
  b.AddEdge(1, 0);
  b.AddEdge(2, 0);
  for (NodeId s = 3; s <= 5; ++s) b.AddEdge(s, 2);
  WebGraph g = b.Build();
  auto good = LinkContribution(g, 1, 0, Precise());
  auto spam = LinkContribution(g, 2, 0, Precise());
  ASSERT_TRUE(good.ok() && spam.ok());
  double n = g.num_nodes();
  EXPECT_NEAR(good.value(), kC * (1 - kC) / n, 1e-12);
  EXPECT_NEAR(spam.value(), (kC + 3 * kC * kC) * (1 - kC) / n, 1e-12);
  EXPECT_GT(spam.value(), good.value());
}

}  // namespace
}  // namespace spammass
