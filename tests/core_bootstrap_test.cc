// Tests of the Section 3.4 spam-core bootstrap.

#include "core/bootstrap.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "synth/generator.h"
#include "synth/paper_graphs.h"
#include "synth/scenario.h"
#include "util/logging.h"

namespace spammass {
namespace {

using core::BootstrapOptions;
using core::BootstrapSpamCore;
using graph::NodeId;

BootstrapOptions SmallGraphOptions() {
  BootstrapOptions options;
  options.mass.solver.tolerance = 1e-14;
  options.mass.solver.max_iterations = 3000;
  options.mass.scale_core_jump = false;
  options.seed_detector.scaled_pagerank_threshold = 1.5;
  options.seed_detector.relative_mass_threshold = 0.7;
  return options;
}

TEST(BootstrapTest, InvalidOptionsRejected) {
  auto fig = synth::MakeFigure2Graph();
  BootstrapOptions options = SmallGraphOptions();
  options.rounds = 0;
  EXPECT_FALSE(BootstrapSpamCore(fig.graph, fig.good_core, options).ok());
  options = SmallGraphOptions();
  options.combine_weight = 1.5;
  EXPECT_FALSE(BootstrapSpamCore(fig.graph, fig.good_core, options).ok());
}

TEST(BootstrapTest, FailsWhenNothingDetected) {
  auto fig = synth::MakeFigure2Graph();
  BootstrapOptions options = SmallGraphOptions();
  options.seed_detector.scaled_pagerank_threshold = 1e6;  // nothing passes
  auto r = BootstrapSpamCore(fig.graph, fig.good_core, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(BootstrapTest, HarvestsHighMassCandidatesOnFigure2) {
  auto fig = synth::MakeFigure2Graph();
  BootstrapOptions options = SmallGraphOptions();
  auto r = BootstrapSpamCore(fig.graph, fig.good_core, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // τ = 0.7 seeds with {x (m̃ 0.75), s0 (m̃ 1.0)} (detector order: by
  // descending relative mass).
  std::vector<NodeId> harvested = r.value().spam_core;
  std::sort(harvested.begin(), harvested.end());
  EXPECT_EQ(harvested, (std::vector<NodeId>{fig.x, fig.s0}));
  // Combined = average of good-core and spam-core estimates.
  for (size_t i = 0; i < r.value().combined.absolute_mass.size(); ++i) {
    EXPECT_NEAR(r.value().combined.absolute_mass[i],
                0.5 * (r.value().from_good_core.absolute_mass[i] +
                       r.value().from_spam_core.absolute_mass[i]),
                1e-12);
  }
}

TEST(BootstrapTest, CombinedLowersFalsePositiveMass) {
  // On Figure 2, the good-core estimate overstates g2's mass (0.69); the
  // harvested spam core {x, s0} contributes nothing to g2, so the combined
  // relative mass of the false positive drops.
  auto fig = synth::MakeFigure2Graph();
  auto r = BootstrapSpamCore(fig.graph, fig.good_core, SmallGraphOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value().combined.relative_mass[fig.g2],
            r.value().from_good_core.relative_mass[fig.g2]);
  // While the true target stays clearly above the false positive (the
  // incomplete spam core dilutes both, but preserves the ordering).
  EXPECT_GT(r.value().combined.relative_mass[fig.x],
            r.value().combined.relative_mass[fig.g2] + 0.1);
  EXPECT_GT(r.value().combined.relative_mass[fig.x], 0.4);
}

TEST(BootstrapTest, SyntheticWebBootstrapImprovesAreaUnderCurve) {
  auto web = synth::GenerateWeb(synth::TinyScenario(13));
  CHECK_OK(web.status());
  BootstrapOptions options;
  options.mass.solver.method = pagerank::Method::kGaussSeidel;
  options.mass.solver.tolerance = 1e-10;
  options.mass.gamma = 0.9;
  options.seed_detector.relative_mass_threshold = 0.99;
  options.seed_detector.scaled_pagerank_threshold = 10;
  auto r = BootstrapSpamCore(web.value().graph,
                             web.value().AssembledGoodCore(), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().spam_core.empty());
  // The harvested core should be overwhelmingly true spam (high-precision
  // seeding is the point of τ = 0.99).
  uint64_t true_spam = 0;
  for (NodeId x : r.value().spam_core) {
    true_spam += web.value().labels.IsSpam(x);
  }
  EXPECT_GT(static_cast<double>(true_spam) / r.value().spam_core.size(),
            0.7);
}

TEST(BootstrapTest, MultipleRoundsRun) {
  auto fig = synth::MakeFigure2Graph();
  BootstrapOptions options = SmallGraphOptions();
  options.rounds = 3;
  auto r = BootstrapSpamCore(fig.graph, fig.good_core, options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().spam_core.empty());
}

}  // namespace
}  // namespace spammass
