// Tests of good-core assembly utilities (Sections 4.2 and 4.5).

#include "core/good_core.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using core::CoreFromMask;
using core::ExpandCore;
using core::FilterCoreByRegion;
using core::SubsampleCore;
using core::UnionCores;
using graph::NodeId;

TEST(GoodCoreTest, CoreFromMask) {
  EXPECT_EQ(CoreFromMask({false, true, true, false, true}),
            (std::vector<NodeId>{1, 2, 4}));
  EXPECT_TRUE(CoreFromMask({}).empty());
}

TEST(GoodCoreTest, UnionDeduplicatesAndSorts) {
  EXPECT_EQ(UnionCores({{5, 1}, {1, 3}, {2}}),
            (std::vector<NodeId>{1, 2, 3, 5}));
  EXPECT_TRUE(UnionCores({}).empty());
}

TEST(GoodCoreTest, SubsampleSizes) {
  std::vector<NodeId> core(1000);
  for (NodeId i = 0; i < 1000; ++i) core[i] = i;
  util::Rng rng(5);
  EXPECT_EQ(SubsampleCore(core, 0.1, &rng).size(), 100u);
  EXPECT_EQ(SubsampleCore(core, 0.01, &rng).size(), 10u);
  EXPECT_EQ(SubsampleCore(core, 0.001, &rng).size(), 1u);
  EXPECT_EQ(SubsampleCore(core, 1.0, &rng).size(), 1000u);
}

TEST(GoodCoreTest, SubsampleElementsComeFromCore) {
  std::vector<NodeId> core = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  util::Rng rng(6);
  auto sub = SubsampleCore(core, 0.4, &rng);
  EXPECT_EQ(sub.size(), 4u);
  for (NodeId x : sub) {
    EXPECT_TRUE(std::find(core.begin(), core.end(), x) != core.end());
  }
}

TEST(GoodCoreTest, SubsampleIsUniform) {
  std::vector<NodeId> core = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  util::Rng rng(7);
  std::vector<int> hits(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (NodeId x : SubsampleCore(core, 0.3, &rng)) hits[x]++;
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.3, 0.03);
  }
}

TEST(GoodCoreTest, FilterByRegion) {
  std::vector<NodeId> core = {0, 1, 2, 3};
  std::vector<uint32_t> region = {7, 9, 7, 7};
  EXPECT_EQ(FilterCoreByRegion(core, region, 7),
            (std::vector<NodeId>{0, 2, 3}));
  EXPECT_TRUE(FilterCoreByRegion(core, region, 42).empty());
}

TEST(GoodCoreTest, ExpandCoreAddsWithoutDuplicates) {
  // The Section 4.4.2 fix: 12 hub hosts appended to a half-million core.
  std::vector<NodeId> core = {1, 2, 3};
  EXPECT_EQ(ExpandCore(core, {3, 4, 5}), (std::vector<NodeId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(ExpandCore(core, {}), core);
}

}  // namespace
}  // namespace spammass
