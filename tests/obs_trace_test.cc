// Trace-span correctness: the serialized output is valid Chrome
// trace-event JSON (parsed, not grepped), pool tasks show up on worker
// tracks, a disabled tracer records nothing, and ring wrap-around drops
// the oldest events while counting the drops. Tests in this file share
// the process-global trace registry; each one starts with StartTracing()
// (which clears all rings) so earlier tests cannot leak events in.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "json_test_util.h"
#include "util/thread_pool.h"

namespace spammass::obs {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

/// Parses the current trace and returns the root value.
JsonValue ParseTrace() {
  JsonValue root;
  std::string error;
  EXPECT_TRUE(JsonParser::Parse(SerializeChromeTrace(), &root, &error))
      << error;
  return root;
}

/// Complete ("ph":"X") events with the given name.
std::vector<JsonValue> EventsNamed(const JsonValue& root,
                                   const std::string& name) {
  std::vector<JsonValue> matches;
  for (const JsonValue& event : root["traceEvents"].array) {
    if (event["ph"].string == "X" && event["name"].string == name) {
      matches.push_back(event);
    }
  }
  return matches;
}

TEST(ObsTraceTest, SerializesValidChromeTraceJson) {
  StartTracing();
  {
    SPAMMASS_TRACE_SPAN("test.outer", "answer", 42, "label",
                        "a \"quoted\" value");
    SPAMMASS_TRACE_SPAN("test.inner", "ratio", 0.5);
  }
  StopTracing();

  const JsonValue root = ParseTrace();
  EXPECT_EQ(root["displayTimeUnit"].string, "ms");
  ASSERT_TRUE(root["traceEvents"].is_array());

  const auto outer = EventsNamed(root, "test.outer");
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer[0]["cat"].string, "spammass");
  EXPECT_EQ(outer[0]["pid"].number, 1);
  EXPECT_GT(outer[0]["tid"].number, 0);
  EXPECT_GE(outer[0]["ts"].number, 0);
  EXPECT_GE(outer[0]["dur"].number, 0);
  EXPECT_EQ(outer[0]["args"]["answer"].number, 42);
  EXPECT_EQ(outer[0]["args"]["label"].string, "a \"quoted\" value");

  const auto inner = EventsNamed(root, "test.inner");
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner[0]["args"]["ratio"].number, 0.5);
  // The inner span closed before the outer one and nests inside it.
  EXPECT_LE(outer[0]["ts"].number, inner[0]["ts"].number);

  // Every ring contributes a thread_name metadata event for its track.
  std::set<double> named_tids;
  for (const JsonValue& event : root["traceEvents"].array) {
    if (event["ph"].string == "M") {
      EXPECT_EQ(event["name"].string, "thread_name");
      EXPECT_FALSE(event["args"]["name"].string.empty());
      named_tids.insert(event["tid"].number);
    }
  }
  EXPECT_TRUE(named_tids.count(outer[0]["tid"].number));
}

TEST(ObsTraceTest, PoolTasksAppearOnNamedWorkerTracks) {
  StartTracing();
  {
    util::ThreadPool pool(2);
    pool.ParallelForChunked(64, 8,
                            [](uint64_t, uint64_t, uint64_t) {});
    pool.Wait();
  }
  StopTracing();

  const JsonValue root = ParseTrace();
  const auto tasks = EventsNamed(root, "pool_task");
  // ParallelForChunked bundles its chunks into one queue task per worker.
  ASSERT_EQ(tasks.size(), 2u);
  std::set<double> task_tids;
  for (const JsonValue& task : tasks) task_tids.insert(task["tid"].number);

  // Worker threads were named by the telemetry hooks.
  std::set<double> worker_tids;
  for (const JsonValue& event : root["traceEvents"].array) {
    if (event["ph"].string == "M" &&
        event["args"]["name"].string.rfind("pool-worker-", 0) == 0) {
      worker_tids.insert(event["tid"].number);
    }
  }
  for (double tid : task_tids) {
    EXPECT_TRUE(worker_tids.count(tid))
        << "pool_task on unnamed track " << tid;
  }
}

TEST(ObsTraceTest, DisabledTracingRecordsNothing) {
  StartTracing();  // clear rings
  StopTracing();
  {
    SPAMMASS_TRACE_SPAN("test.should_not_appear");
    util::ThreadPool pool(2);
    pool.ParallelFor(32, [](uint64_t, uint64_t) {});
    pool.Wait();
  }
  const JsonValue root = ParseTrace();
  size_t complete_events = 0;
  for (const JsonValue& event : root["traceEvents"].array) {
    complete_events += event["ph"].string == "X";
  }
  EXPECT_EQ(complete_events, 0u);
  EXPECT_EQ(DroppedEventCount(), 0u);
}

TEST(ObsTraceTest, RingWrapDropsOldestAndCountsThem) {
  StartTracing();
  constexpr uint32_t kExtra = 100;
  for (uint32_t i = 0; i < kRingCapacity + kExtra; ++i) {
    SPAMMASS_TRACE_SPAN("test.wrap", "i", i);
  }
  StopTracing();

  EXPECT_EQ(DroppedEventCount(), kExtra);
  const JsonValue root = ParseTrace();
  const auto events = EventsNamed(root, "test.wrap");
  ASSERT_EQ(events.size(), kRingCapacity);
  // The oldest kExtra events were overwritten: the surviving window is
  // [kExtra, kRingCapacity + kExtra), serialized oldest-first.
  EXPECT_EQ(events.front()["args"]["i"].number, kExtra);
  EXPECT_EQ(events.back()["args"]["i"].number, kRingCapacity + kExtra - 1);
}

TEST(ObsTraceTest, WriteTraceFileCreatesParentDirectories) {
  StartTracing();
  { SPAMMASS_TRACE_SPAN("test.file"); }
  StopTracing();
  const std::string path =
      testing::TempDir() + "/obs_trace_test/nested/trace.json";
  ASSERT_TRUE(WriteTraceFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

}  // namespace
}  // namespace spammass::obs
