// Tests for log emission: the test capture sink, level filtering, and line
// integrity under concurrent writers — the regression suite for routing
// all emission through the serialized EmitLine path in logging.cc.

#include "util/logging.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace spammass::util {
namespace {

class LogCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLogCaptureForTest(&lines_); }
  void TearDown() override {
    SetLogCaptureForTest(nullptr);
    SetLogLevel(LogLevel::kInfo);
  }
  std::vector<std::string> lines_;
};

TEST_F(LogCaptureTest, CapturesFormattedLine) {
  LOG_INFO() << "hello " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("[INFO "), std::string::npos) << lines_[0];
  EXPECT_NE(lines_[0].find("util_logging_test.cc"), std::string::npos)
      << lines_[0];
  EXPECT_NE(lines_[0].find("] hello 42"), std::string::npos) << lines_[0];
}

TEST_F(LogCaptureTest, LevelFilterSuppressesBelowMinimum) {
  SetLogLevel(LogLevel::kWarning);
  LOG_INFO() << "dropped";
  LOG_WARNING() << "kept";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("kept"), std::string::npos) << lines_[0];
}

TEST_F(LogCaptureTest, ResettingSinkStopsCapture) {
  LOG_INFO() << "captured";
  SetLogCaptureForTest(nullptr);
  LOG_INFO() << "to stderr";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("captured"), std::string::npos);
}

TEST_F(LogCaptureTest, ConcurrentWritersNeverSpliceLines) {
  constexpr int kThreads = 4;
  constexpr int kLines = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        LOG_INFO() << "writer=" << t << " seq=" << i << " payload";
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_EQ(lines_.size(), static_cast<size_t>(kThreads) * kLines);
  // Every captured line must be exactly one writer's whole message —
  // intact prefix, parseable body, intact suffix — and each writer's
  // sequence numbers must appear in its own emission order.
  std::vector<int> next_seq(kThreads, 0);
  for (const std::string& line : lines_) {
    EXPECT_NE(line.find("[INFO "), std::string::npos) << line;
    const size_t pos = line.find("writer=");
    ASSERT_NE(pos, std::string::npos) << line;
    int writer = -1;
    int seq = -1;
    ASSERT_EQ(std::sscanf(line.c_str() + pos, "writer=%d seq=%d", &writer,
                          &seq),
              2)
        << line;
    ASSERT_GE(writer, 0);
    ASSERT_LT(writer, kThreads);
    EXPECT_EQ(seq, next_seq[writer]) << line;
    next_seq[writer] = seq + 1;
    EXPECT_EQ(line.substr(line.size() - 8), " payload") << line;
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(next_seq[t], kLines);
}

}  // namespace
}  // namespace spammass::util
