// SolverWorkspace lifetime contract (pagerank/workspace.h): a workspace
// caches *resources* (thread pool, scratch vectors) but never *results* —
// every solve through a reused workspace must return bit-identical output
// to a fresh-state solve. The suite drives the risky reuse patterns:
// interleaving solves over graphs of different sizes (buffers must resize
// but stale contents must never leak into results), switching thread
// counts mid-stream (pool replacement), and long solve chains.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/solver.h"
#include "pagerank/workspace.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;
using pagerank::SolverOptions;
using pagerank::SolverWorkspace;

WebGraph MakeSyntheticGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b(n);
  for (uint32_t e = 0; e < edges; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(n * 3 / 4));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t abits, bbits;
    std::memcpy(&abits, &a[i], sizeof(abits));
    std::memcpy(&bbits, &b[i], sizeof(bbits));
    ASSERT_EQ(abits, bbits) << "diverge at " << i << ": " << a[i] << " vs "
                            << b[i];
  }
}

TEST(SolverWorkspaceTest, InterleavedGraphsMatchFreshSolves) {
  // A large and a small graph alternate through ONE workspace; the second
  // graph's solves run inside buffers sized (and dirtied) by the first.
  WebGraph big = MakeSyntheticGraph(900, 4500, /*seed=*/3);
  WebGraph small = MakeSyntheticGraph(120, 500, /*seed=*/5);
  SolverOptions opt;
  opt.tolerance = 1e-12;
  opt.max_iterations = 2000;

  SolverWorkspace ws;
  std::vector<std::vector<double>> reused;
  for (int round = 0; round < 2; ++round) {
    for (const WebGraph* g : {&big, &small}) {
      auto r = pagerank::ComputeUniformPageRank(*g, opt, &ws);
      ASSERT_TRUE(r.ok());
      reused.push_back(std::move(r.value().scores));
    }
  }
  EXPECT_EQ(ws.solve_count(), 4u);

  size_t i = 0;
  for (int round = 0; round < 2; ++round) {
    for (const WebGraph* g : {&big, &small}) {
      auto fresh = pagerank::ComputeUniformPageRank(*g, opt);
      ASSERT_TRUE(fresh.ok());
      ExpectBitIdentical(reused[i++], fresh.value().scores);
    }
  }
}

TEST(SolverWorkspaceTest, ThreadCountChangesReplaceThePool) {
  WebGraph g = MakeSyntheticGraph(600, 3000, /*seed=*/9);
  SolverOptions opt;
  opt.tolerance = 0.0;
  opt.max_iterations = 40;

  SolverWorkspace ws;
  EXPECT_EQ(ws.pool(), nullptr);

  auto serial_ref = pagerank::ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(serial_ref.ok());

  for (uint32_t threads : {1u, 4u, 2u, 8u, 1u}) {
    opt.num_threads = threads;
    auto r = pagerank::ComputeUniformPageRank(g, opt, &ws);
    ASSERT_TRUE(r.ok());
    // Deterministic kernels: every thread count reproduces the serial
    // scores bit for bit, through pool replacements included.
    ExpectBitIdentical(r.value().scores, serial_ref.value().scores);
    if (threads > 1) {
      ASSERT_NE(ws.pool(), nullptr);
      EXPECT_EQ(ws.pool_threads(), threads);
    }
  }
  // The serial solves kept the last pool cached rather than tearing it
  // down (EnsurePool(1) returns nullptr but does not discard).
  EXPECT_NE(ws.pool(), nullptr);
}

TEST(SolverWorkspaceTest, MultiSolveAndMethodsShareOneWorkspace) {
  WebGraph g = MakeSyntheticGraph(400, 2000, /*seed=*/15);
  std::vector<JumpVector> jumps;
  jumps.push_back(JumpVector::Uniform(g.num_nodes()));
  jumps.push_back(JumpVector::Core(g.num_nodes(), {1, 3, 5, 7}));

  SolverOptions opt;
  opt.tolerance = 1e-11;
  opt.max_iterations = 2000;

  SolverWorkspace ws;
  // Jacobi multi, then Gauss-Seidel, then power iteration, all through the
  // same workspace; each must match its fresh-state twin.
  auto multi = pagerank::ComputePageRankMulti(g, jumps, opt, &ws);
  ASSERT_TRUE(multi.ok());

  opt.method = pagerank::Method::kGaussSeidel;
  auto gs = pagerank::ComputePageRank(g, jumps[0], opt, &ws);
  ASSERT_TRUE(gs.ok());

  opt.method = pagerank::Method::kPowerIteration;
  auto pi = pagerank::ComputePageRank(g, jumps[0], opt, &ws);
  ASSERT_TRUE(pi.ok());

  opt.method = pagerank::Method::kJacobi;
  auto fresh_multi = pagerank::ComputePageRankMulti(g, jumps, opt);
  ASSERT_TRUE(fresh_multi.ok());
  for (size_t j = 0; j < jumps.size(); ++j) {
    ExpectBitIdentical(multi.value()[j].scores,
                       fresh_multi.value()[j].scores);
  }
  opt.method = pagerank::Method::kGaussSeidel;
  auto fresh_gs = pagerank::ComputePageRank(g, jumps[0], opt);
  ASSERT_TRUE(fresh_gs.ok());
  ExpectBitIdentical(gs.value().scores, fresh_gs.value().scores);

  opt.method = pagerank::Method::kPowerIteration;
  auto fresh_pi = pagerank::ComputePageRank(g, jumps[0], opt);
  ASSERT_TRUE(fresh_pi.ok());
  ExpectBitIdentical(pi.value().scores, fresh_pi.value().scores);
}

TEST(SolverWorkspaceTest, LongReuseChainStaysExact) {
  WebGraph g = MakeSyntheticGraph(250, 1200, /*seed=*/21);
  SolverOptions opt;
  opt.tolerance = 1e-12;
  opt.max_iterations = 2000;

  SolverWorkspace ws;
  auto fresh = pagerank::ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(fresh.ok());
  for (int i = 0; i < 20; ++i) {
    auto r = pagerank::ComputeUniformPageRank(g, opt, &ws);
    ASSERT_TRUE(r.ok());
    ExpectBitIdentical(r.value().scores, fresh.value().scores);
  }
  EXPECT_EQ(ws.solve_count(), 20u);
}

TEST(SolverWorkspaceTest, PreSpawnedPoolConstructor) {
  SolverWorkspace ws(/*num_threads=*/4);
  ASSERT_NE(ws.pool(), nullptr);
  EXPECT_EQ(ws.pool_threads(), 4u);
  EXPECT_EQ(ws.pool()->num_threads(), 4u);
  // EnsurePool with the same count must return the same pool object.
  EXPECT_EQ(ws.EnsurePool(4), ws.pool());
}

}  // namespace
}  // namespace spammass
