// Tests of BFS reachability and weakly connected components.

#include "graph/graph_algorithms.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace spammass {
namespace {

using graph::BfsDistances;
using graph::CanReach;
using graph::GraphBuilder;
using graph::kUnreachableDistance;
using graph::NodeId;
using graph::ReachableFrom;
using graph::WeaklyConnectedComponents;
using graph::WebGraph;

WebGraph TwoComponents() {
  GraphBuilder b(7);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  // 6 isolated.
  return b.Build();
}

TEST(GraphAlgorithmsTest, ReachableFollowsDirection) {
  WebGraph g = TwoComponents();
  auto reach = ReachableFrom(g, {3});
  EXPECT_FALSE(reach[0]);
  EXPECT_TRUE(reach[3]);
  EXPECT_TRUE(reach[4]);
  EXPECT_TRUE(reach[5]);
  EXPECT_FALSE(reach[6]);
}

TEST(GraphAlgorithmsTest, ReachableMultiSource) {
  WebGraph g = TwoComponents();
  auto reach = ReachableFrom(g, {0, 3});
  int count = 0;
  for (bool r : reach) count += r;
  EXPECT_EQ(count, 6);  // everything except the isolated node 6
}

TEST(GraphAlgorithmsTest, CanReachIsReverseReachability) {
  WebGraph g = TwoComponents();
  auto can = CanReach(g, {5});
  EXPECT_TRUE(can[3]);
  EXPECT_TRUE(can[4]);
  EXPECT_TRUE(can[5]);
  EXPECT_FALSE(can[0]);
}

TEST(GraphAlgorithmsTest, BfsDistances) {
  WebGraph g = TwoComponents();
  auto dist = BfsDistances(g, {3});
  EXPECT_EQ(dist[3], 0u);
  EXPECT_EQ(dist[4], 1u);
  EXPECT_EQ(dist[5], 2u);
  EXPECT_EQ(dist[0], kUnreachableDistance);
}

TEST(GraphAlgorithmsTest, WeaklyConnectedComponents) {
  WebGraph g = TwoComponents();
  uint32_t num = 0;
  auto comp = WeaklyConnectedComponents(g, &num);
  EXPECT_EQ(num, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_EQ(comp[4], comp[5]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[6]);
  EXPECT_NE(comp[3], comp[6]);
}

TEST(GraphAlgorithmsTest, WccIgnoresEdgeDirection) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(2, 1);  // 0 -> 1 <- 2: weakly one component
  WebGraph g = b.Build();
  uint32_t num = 0;
  auto comp = WeaklyConnectedComponents(g, &num);
  EXPECT_EQ(num, 1u);
  EXPECT_EQ(comp[0], comp[2]);
}

TEST(GraphAlgorithmsTest, EmptySources) {
  WebGraph g = TwoComponents();
  auto reach = ReachableFrom(g, {});
  for (bool r : reach) EXPECT_FALSE(r);
}

}  // namespace
}  // namespace spammass
