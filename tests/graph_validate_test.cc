// Tests of the CSR/graph invariant validators (graph/graph_validate.h):
// well-formed graphs pass, and each deliberately corrupted CSR input is
// rejected with a FailedPrecondition naming the violation.

#include "graph/graph_validate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "util/status.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::ValidateCsr;
using graph::ValidateGraph;
using graph::WebGraph;
using util::StatusCode;

WebGraph MakeDiamond() {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(3, 0);
  return b.Build();
}

TEST(ValidateGraphTest, WellFormedGraphPasses) {
  WebGraph g = MakeDiamond();
  EXPECT_TRUE(ValidateGraph(g).ok());
}

TEST(ValidateGraphTest, EmptyGraphPasses) {
  WebGraph g;
  EXPECT_TRUE(ValidateGraph(g).ok());
}

TEST(ValidateGraphTest, TransposedGraphPasses) {
  WebGraph g = MakeDiamond().Transposed();
  EXPECT_TRUE(ValidateGraph(g).ok());
}

TEST(ValidateGraphTest, BuilderOutputWithNamesPasses) {
  GraphBuilder b;
  NodeId a = b.AddNode("a.example.com");
  NodeId c = b.AddNode("c.example.com");
  b.AddEdge(a, c);
  WebGraph g = b.Build();
  EXPECT_TRUE(ValidateGraph(g).ok());
}

TEST(ValidateCsrTest, AcceptsWellFormedArrays) {
  // 3 nodes: 0 -> {1, 2}, 1 -> {2}, 2 -> {}.
  std::vector<uint64_t> offsets = {0, 2, 3, 3};
  std::vector<NodeId> adjacency = {1, 2, 2};
  EXPECT_TRUE(ValidateCsr(3, offsets, adjacency).ok());
}

TEST(ValidateCsrTest, RejectsWrongOffsetsSize) {
  std::vector<uint64_t> offsets = {0, 2, 3};  // needs 4 entries for 3 nodes
  std::vector<NodeId> adjacency = {1, 2, 2};
  auto st = ValidateCsr(3, offsets, adjacency);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("num_nodes + 1"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsOffsetsNotStartingAtZero) {
  std::vector<uint64_t> offsets = {1, 2, 3, 3};
  std::vector<NodeId> adjacency = {1, 2, 2};
  EXPECT_FALSE(ValidateCsr(3, offsets, adjacency).ok());
}

TEST(ValidateCsrTest, RejectsOffsetsNotCoveringAdjacency) {
  std::vector<uint64_t> offsets = {0, 2, 3, 3};
  std::vector<NodeId> adjacency = {1, 2, 2, 0};  // one extra entry
  auto st = ValidateCsr(3, offsets, adjacency);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("adjacency"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsDecreasingOffsets) {
  std::vector<uint64_t> offsets = {0, 2, 1, 3};
  std::vector<NodeId> adjacency = {1, 2, 0};
  auto st = ValidateCsr(3, offsets, adjacency);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("decrease"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsOutOfRangeNeighbor) {
  std::vector<uint64_t> offsets = {0, 2, 3, 3};
  std::vector<NodeId> adjacency = {1, 7, 2};  // 7 >= num_nodes
  auto st = ValidateCsr(3, offsets, adjacency);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("out of range"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsSelfLoop) {
  std::vector<uint64_t> offsets = {0, 2, 3, 3};
  std::vector<NodeId> adjacency = {0, 1, 2};  // row 0 contains 0
  auto st = ValidateCsr(3, offsets, adjacency);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("self-loop"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsUnsortedRow) {
  std::vector<uint64_t> offsets = {0, 2, 3, 3};
  std::vector<NodeId> adjacency = {2, 1, 2};  // row 0 = {2, 1}
  auto st = ValidateCsr(3, offsets, adjacency);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ascending"), std::string::npos);
}

TEST(ValidateCsrTest, RejectsDuplicateNeighbors) {
  std::vector<uint64_t> offsets = {0, 2, 3, 3};
  std::vector<NodeId> adjacency = {1, 1, 2};  // row 0 = {1, 1}
  auto st = ValidateCsr(3, offsets, adjacency);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ascending"), std::string::npos);
}

TEST(ValidateCsrTest, ReportsDirectionInMessage) {
  std::vector<uint64_t> offsets = {0, 1, 1};
  std::vector<NodeId> adjacency = {0};  // self-loop in row 0
  auto st = ValidateCsr(2, offsets, adjacency, "in");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("in-adjacency"), std::string::npos);
}

// Derived solver-support arrays (inverse out-degrees + dangling list).
// 3 nodes: 0 -> {1, 2}, 1 -> {2}, 2 -> {} (node 2 dangling).
class ValidateDerivedArraysTest : public ::testing::Test {
 protected:
  std::vector<uint64_t> offsets_ = {0, 2, 3, 3};
  std::vector<double> inv_ = {0.5, 1.0, 0.0};
  std::vector<NodeId> dangling_ = {2};
};

TEST_F(ValidateDerivedArraysTest, AcceptsConsistentArrays) {
  EXPECT_TRUE(
      graph::ValidateDerivedArrays(3, offsets_, inv_, dangling_).ok());
}

TEST_F(ValidateDerivedArraysTest, RejectsWrongInverseSize) {
  inv_.push_back(0.0);
  auto st = graph::ValidateDerivedArrays(3, offsets_, inv_, dangling_);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ValidateDerivedArraysTest, RejectsInexactReciprocal) {
  // Close is not enough: the cached weight must be the exact IEEE quotient.
  inv_[0] = std::nextafter(0.5, 1.0);
  auto st = graph::ValidateDerivedArrays(3, offsets_, inv_, dangling_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("inverse out-degree"), std::string::npos);
}

TEST_F(ValidateDerivedArraysTest, RejectsNonzeroInverseOnDangling) {
  inv_[2] = 1.0;
  auto st = graph::ValidateDerivedArrays(3, offsets_, inv_, dangling_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("dangling"), std::string::npos);
}

TEST_F(ValidateDerivedArraysTest, RejectsMissingDanglingEntry) {
  dangling_.clear();
  EXPECT_FALSE(
      graph::ValidateDerivedArrays(3, offsets_, inv_, dangling_).ok());
}

TEST_F(ValidateDerivedArraysTest, RejectsSpuriousDanglingEntry) {
  dangling_ = {1, 2};  // node 1 has outdegree 1
  EXPECT_FALSE(
      graph::ValidateDerivedArrays(3, offsets_, inv_, dangling_).ok());
}

TEST_F(ValidateDerivedArraysTest, RejectsTrailingDanglingEntries) {
  dangling_ = {2, 2};  // duplicate beyond the real list
  auto st = graph::ValidateDerivedArrays(3, offsets_, inv_, dangling_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("dangling list"), std::string::npos);
}

}  // namespace
}  // namespace spammass
