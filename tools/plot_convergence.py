#!/usr/bin/env python3
"""Plot solver convergence curves from a run manifest (schema v2).

Reads the "convergence" array a schema-version-2 manifest records for each
PageRank solve (pipeline/manifest.cc). Residual curves are present when
the run tracked residuals — pass --record-convergence to spammass_cli, or
set SolverOptions::track_residuals in code:

    spammass_cli run --graph synthetic:0.05:7 --record-convergence \\
        --manifest run_manifest.json
    tools/plot_convergence.py run_manifest.json

Both wrapper manifests (spammass_cli run: {"runs": [...]}) and single
pipeline manifests are accepted. By default an ASCII log-residual chart is
printed per solve; --png writes a matplotlib figure instead when
matplotlib is installed (no hard dependency — the script degrades to the
ASCII chart with a note if it is not).
"""

import argparse
import json
import math
import sys

CHART_WIDTH = 64
CHART_HEIGHT = 16


def collect_solves(manifest):
    """Yields (run_label, solve_entry) for every convergence record."""
    if "runs" in manifest:
        for run in manifest["runs"]:
            label = run.get("graph", {}).get("source", "run")
            for entry in run.get("convergence", []):
                yield label, entry
    else:
        label = manifest.get("graph", {}).get("source", "run")
        for entry in manifest.get("convergence", []):
            yield label, entry


def ascii_chart(curve):
    """Renders one residual curve as an ASCII log-scale chart."""
    logs = [math.log10(r) if r > 0 else None for r in curve]
    finite = [v for v in logs if v is not None]
    if not finite:
        return ["  (all residuals zero)"]
    lo, hi = min(finite), max(finite)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    # Downsample to the chart width, keeping the last point exact.
    n = len(curve)
    cols = min(n, CHART_WIDTH)
    picks = [min(n - 1, i * n // cols) for i in range(cols)]
    picks[-1] = n - 1
    rows = []
    for row in range(CHART_HEIGHT):
        # Row 0 is the top of the chart (largest residual).
        upper = hi - (hi - lo) * row / CHART_HEIGHT
        lower = hi - (hi - lo) * (row + 1) / CHART_HEIGHT
        line = []
        for i in picks:
            v = logs[i]
            if v is None:
                line.append(" ")
            elif lower <= v <= upper or (row == CHART_HEIGHT - 1 and v <= lower):
                line.append("*")
            else:
                line.append(" ")
        label = f"1e{upper:+06.1f} |" if row % 4 == 0 else "         |"
        rows.append(label + "".join(line))
    rows.append("         +" + "-" * cols)
    rows.append(f"          iteration 1 .. {n}")
    return rows


def print_ascii(solves):
    for run_label, entry in solves:
        name = entry.get("name", "?")
        iters = entry.get("iterations")
        residual = entry.get("residual")
        converged = entry.get("converged")
        print(f"\n{run_label} :: {name}: {iters} iterations, final "
              f"residual {residual:g}, converged: {converged}")
        curve = entry.get("residual_curve")
        if not curve:
            print("  (no residual_curve recorded; rerun with "
                  "--record-convergence)")
            continue
        for line in ascii_chart(curve):
            print(line)


def plot_png(solves, out_path):
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; falling back to ASCII output",
              file=sys.stderr)
        print_ascii(solves)
        return
    fig, ax = plt.subplots(figsize=(8, 5))
    plotted = 0
    for run_label, entry in solves:
        curve = entry.get("residual_curve")
        if not curve:
            continue
        label = f"{entry.get('name', '?')} ({run_label})"
        ax.semilogy(range(1, len(curve) + 1), curve, label=label)
        plotted += 1
    if plotted == 0:
        print("no residual curves in manifest; rerun with "
              "--record-convergence", file=sys.stderr)
        return
    ax.set_xlabel("iteration")
    ax.set_ylabel("L1 residual")
    ax.set_title("PageRank solver convergence")
    ax.grid(True, which="both", alpha=0.3)
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print(f"wrote {out_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("manifest", help="run manifest JSON (schema v2)")
    parser.add_argument("--png", default=None,
                        help="write a matplotlib figure to this path "
                        "instead of printing ASCII charts")
    args = parser.parse_args()

    try:
        with open(args.manifest, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"plot_convergence: cannot read {args.manifest}: {e}",
              file=sys.stderr)
        return 2

    solves = list(collect_solves(manifest))
    if not solves:
        print(f"plot_convergence: no convergence records in {args.manifest} "
              "(schema_version >= 2 required)", file=sys.stderr)
        return 1

    if args.png:
        plot_png(solves, args.png)
    else:
        print_ascii(solves)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into head/less that exited early; not an error.
        sys.stderr.close()
        sys.exit(0)
