// spammass_cli — command-line front end for the library. Subcommands:
//
//   generate   synthesize a Yahoo-2004-like host graph to disk
//   stats      structural statistics of an edge-list graph
//   pagerank   compute (scaled) PageRank scores
//   mass       estimate spam mass from a good-core file
//   detect     run Algorithm 2 and print/save spam candidates
//   sites      aggregate a host graph to the site level
//
// Graphs are text edge lists ("src dst" per line; see graph/graph_io.h),
// cores are node-id lists (one per line), labels are "<id>\t<label>" lines.
// Run `spammass_cli <command> --help` for per-command flags.

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/detector.h"
#include "core/label_io.h"
#include "core/spam_mass.h"
#include "eval/metrics.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/site_aggregation.h"
#include "pagerank/solver.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

using namespace spammass;

namespace {

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: spammass_cli <generate|stats|pagerank|mass|detect|sites> "
               "[flags]\n");
  return 2;
}

/// Parses flags; on --help prints the command's flag list and exits.
bool ParseOrHelp(util::FlagParser* flags, const char* command, int argc,
                 const char* const* argv, int* exit_code) {
  flags->DefineBool("help", "show this help");
  util::Status status = flags->Parse(argc, argv);
  if (!status.ok()) {
    *exit_code = Fail(status);
    return false;
  }
  if (flags->GetBool("help")) {
    std::fprintf(stderr, "spammass_cli %s flags:\n%s", command,
                 flags->Help().c_str());
    *exit_code = 0;
    return false;
  }
  return true;
}

pagerank::SolverOptions SolverFromFlags(const util::FlagParser& flags) {
  pagerank::SolverOptions solver;
  solver.method = pagerank::Method::kGaussSeidel;
  const std::string& method = flags.GetString("method");
  if (method == "jacobi") solver.method = pagerank::Method::kJacobi;
  if (method == "sor") solver.method = pagerank::Method::kSor;
  if (method == "power") solver.method = pagerank::Method::kPowerIteration;
  solver.damping = flags.GetDouble("damping");
  solver.tolerance = flags.GetDouble("tolerance");
  solver.max_iterations = static_cast<int>(flags.GetInt("max-iterations"));
  return solver;
}

void DefineSolverFlags(util::FlagParser* flags) {
  flags->Define("method", "gauss-seidel",
                "solver: jacobi | gauss-seidel | sor | power");
  flags->Define("damping", "0.85", "PageRank damping factor c");
  flags->Define("tolerance", "1e-10", "L1 convergence tolerance");
  flags->Define("max-iterations", "400", "iteration cap");
}

int CmdGenerate(int argc, const char* const* argv) {
  util::FlagParser flags;
  flags.Define("scale", "0.1", "scenario scale (1.0 ~ 170k hosts)");
  flags.Define("seed", "42", "generator seed");
  flags.Define("out-edges", "web.edges", "edge-list output path");
  flags.Define("out-hosts", "", "optional host-name map output path");
  flags.Define("out-labels", "", "optional ground-truth label output path");
  flags.Define("out-core", "", "optional assembled good-core output path");
  int code = 0;
  if (!ParseOrHelp(&flags, "generate", argc, argv, &code)) return code;

  util::WallTimer timer;
  auto web = synth::GenerateWeb(synth::Yahoo2004Scenario(
      flags.GetDouble("scale"),
      static_cast<uint64_t>(flags.GetInt("seed"))));
  if (!web.ok()) return Fail(web.status());
  const synth::SyntheticWeb& w = web.value();
  util::Status status =
      graph::WriteEdgeListText(w.graph, flags.GetString("out-edges"));
  if (!status.ok()) return Fail(status);
  if (!flags.GetString("out-hosts").empty()) {
    status = graph::WriteHostNames(w.graph, flags.GetString("out-hosts"));
    if (!status.ok()) return Fail(status);
  }
  if (!flags.GetString("out-labels").empty()) {
    status = core::WriteLabels(w.labels, flags.GetString("out-labels"));
    if (!status.ok()) return Fail(status);
  }
  if (!flags.GetString("out-core").empty()) {
    status = core::WriteNodeList(w.AssembledGoodCore(),
                                 flags.GetString("out-core"));
    if (!status.ok()) return Fail(status);
  }
  std::printf("generated %s hosts, %s links in %.1fs -> %s\n",
              util::FormatWithCommas(w.graph.num_nodes()).c_str(),
              util::FormatWithCommas(w.graph.num_edges()).c_str(),
              timer.Seconds(), flags.GetString("out-edges").c_str());
  return 0;
}

int CmdStats(int argc, const char* const* argv) {
  util::FlagParser flags;
  flags.Define("edges", "web.edges", "edge-list input path");
  int code = 0;
  if (!ParseOrHelp(&flags, "stats", argc, argv, &code)) return code;

  auto graph = graph::ReadEdgeListText(flags.GetString("edges"));
  if (!graph.ok()) return Fail(graph.status());
  auto stats = graph::ComputeGraphStats(graph.value());
  util::TextTable table;
  table.SetHeader({"metric", "value"});
  table.AddRow({"hosts", util::FormatWithCommas(stats.num_nodes)});
  table.AddRow({"links", util::FormatWithCommas(stats.num_edges)});
  table.AddRow({"no inlinks",
                util::FormatDouble(100 * stats.FractionNoInlinks(), 1) + "%"});
  table.AddRow({"no outlinks",
                util::FormatDouble(100 * stats.FractionNoOutlinks(), 1) + "%"});
  table.AddRow({"isolated",
                util::FormatDouble(100 * stats.FractionIsolated(), 1) + "%"});
  table.AddRow({"max indegree", std::to_string(stats.max_indegree)});
  table.AddRow({"max outdegree", std::to_string(stats.max_outdegree)});
  table.AddRow({"mean degree", util::FormatDouble(stats.mean_indegree, 2)});
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int CmdPageRank(int argc, const char* const* argv) {
  util::FlagParser flags;
  flags.Define("edges", "web.edges", "edge-list input path");
  flags.Define("out", "", "CSV output path (node,scaled_pagerank); stdout "
                          "top-20 otherwise");
  flags.Define("top", "20", "rows to print when --out is unset");
  DefineSolverFlags(&flags);
  int code = 0;
  if (!ParseOrHelp(&flags, "pagerank", argc, argv, &code)) return code;

  auto graph = graph::ReadEdgeListText(flags.GetString("edges"));
  if (!graph.ok()) return Fail(graph.status());
  auto solver = SolverFromFlags(flags);
  util::WallTimer timer;
  auto pr = pagerank::ComputeUniformPageRank(graph.value(), solver);
  if (!pr.ok()) return Fail(pr.status());
  auto scaled = pagerank::ScaledScores(pr.value().scores, solver.damping);
  std::fprintf(stderr, "solved in %d sweeps, %.2fs (converged: %s)\n",
               pr.value().iterations, timer.Seconds(),
               pr.value().converged ? "yes" : "no");

  util::TextTable table;
  table.SetHeader({"node", "scaled_pagerank"});
  std::vector<graph::NodeId> order(graph.value().num_nodes());
  for (graph::NodeId i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](graph::NodeId a, graph::NodeId b) {
    return scaled[a] > scaled[b];
  });
  if (!flags.GetString("out").empty()) {
    for (graph::NodeId x : order) {
      table.AddRow({std::to_string(x), util::FormatDouble(scaled[x], 6)});
    }
    util::Status status = table.WriteCsv(flags.GetString("out"));
    if (!status.ok()) return Fail(status);
    std::printf("wrote %u rows to %s\n", graph.value().num_nodes(),
                flags.GetString("out").c_str());
  } else {
    size_t top = static_cast<size_t>(flags.GetInt("top"));
    for (size_t i = 0; i < order.size() && i < top; ++i) {
      table.AddRow({std::to_string(order[i]),
                    util::FormatDouble(scaled[order[i]], 4)});
    }
    std::printf("%s", table.ToString().c_str());
  }
  return 0;
}

util::Result<core::MassEstimates> EstimateFromFlags(
    const util::FlagParser& flags, const graph::WebGraph& graph) {
  auto good_core =
      core::ReadNodeList(flags.GetString("core"), graph.num_nodes());
  if (!good_core.ok()) return good_core.status();
  core::SpamMassOptions options;
  options.solver = SolverFromFlags(flags);
  options.gamma = flags.GetDouble("gamma");
  options.scale_core_jump = !flags.GetBool("no-jump-scaling");
  return core::EstimateSpamMass(graph, good_core.value(), options);
}

void DefineMassFlags(util::FlagParser* flags) {
  flags->Define("edges", "web.edges", "edge-list input path");
  flags->Define("core", "good.core", "good-core node-list input path");
  flags->Define("gamma", "0.85", "estimated good fraction (Section 3.5)");
  flags->DefineBool("no-jump-scaling",
                    "use the raw v^core jump instead of the gamma-scaled w");
  DefineSolverFlags(flags);
}

int CmdMass(int argc, const char* const* argv) {
  util::FlagParser flags;
  DefineMassFlags(&flags);
  flags.Define("out", "mass.csv",
               "CSV output (node,scaled_pagerank,scaled_abs_mass,rel_mass)");
  int code = 0;
  if (!ParseOrHelp(&flags, "mass", argc, argv, &code)) return code;

  auto graph = graph::ReadEdgeListText(flags.GetString("edges"));
  if (!graph.ok()) return Fail(graph.status());
  auto estimates = EstimateFromFlags(flags, graph.value());
  if (!estimates.ok()) return Fail(estimates.status());
  const core::MassEstimates& est = estimates.value();
  const double scale =
      static_cast<double>(est.pagerank.size()) / (1.0 - est.damping);
  util::TextTable table;
  table.SetHeader({"node", "scaled_pagerank", "scaled_abs_mass", "rel_mass"});
  for (size_t x = 0; x < est.pagerank.size(); ++x) {
    table.AddRow({std::to_string(x),
                  util::FormatDouble(est.pagerank[x] * scale, 6),
                  util::FormatDouble(est.absolute_mass[x] * scale, 6),
                  util::FormatDouble(est.relative_mass[x], 6)});
  }
  util::Status status = table.WriteCsv(flags.GetString("out"));
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu rows to %s\n", est.pagerank.size(),
              flags.GetString("out").c_str());
  return 0;
}

int CmdDetect(int argc, const char* const* argv) {
  util::FlagParser flags;
  DefineMassFlags(&flags);
  flags.Define("tau", "0.98", "relative-mass threshold");
  flags.Define("rho", "10", "scaled-PageRank threshold");
  flags.Define("hosts", "", "optional host-name map for readable output");
  flags.Define("labels", "", "optional ground-truth labels; prints "
                             "precision and AUC when provided");
  flags.Define("out", "", "optional CSV output of all candidates");
  flags.Define("top", "25", "candidates to print");
  int code = 0;
  if (!ParseOrHelp(&flags, "detect", argc, argv, &code)) return code;

  auto graph = graph::ReadEdgeListText(flags.GetString("edges"));
  if (!graph.ok()) return Fail(graph.status());
  graph::WebGraph& web = graph.value();
  if (!flags.GetString("hosts").empty()) {
    util::Status status = graph::ReadHostNames(flags.GetString("hosts"), &web);
    if (!status.ok()) return Fail(status);
  }
  auto estimates = EstimateFromFlags(flags, web);
  if (!estimates.ok()) return Fail(estimates.status());

  core::DetectorConfig config;
  config.relative_mass_threshold = flags.GetDouble("tau");
  config.scaled_pagerank_threshold = flags.GetDouble("rho");
  auto candidates = core::DetectSpamCandidates(estimates.value(), config);
  std::printf("%zu spam candidates (tau=%.2f, rho=%.1f)\n", candidates.size(),
              config.relative_mass_threshold,
              config.scaled_pagerank_threshold);

  util::TextTable table;
  table.SetHeader({"node", "host", "scaled_pagerank", "rel_mass"});
  size_t top = static_cast<size_t>(flags.GetInt("top"));
  for (size_t i = 0; i < candidates.size() && i < top; ++i) {
    const auto& c = candidates[i];
    table.AddRow({std::to_string(c.node), std::string(web.HostName(c.node)),
                  util::FormatDouble(c.scaled_pagerank, 2),
                  util::FormatDouble(c.relative_mass, 4)});
  }
  std::printf("%s", table.ToString().c_str());

  if (!flags.GetString("out").empty()) {
    util::TextTable csv;
    csv.SetHeader({"node", "scaled_pagerank", "rel_mass"});
    for (const auto& c : candidates) {
      csv.AddRow({std::to_string(c.node),
                  util::FormatDouble(c.scaled_pagerank, 6),
                  util::FormatDouble(c.relative_mass, 6)});
    }
    util::Status status = csv.WriteCsv(flags.GetString("out"));
    if (!status.ok()) return Fail(status);
  }

  if (!flags.GetString("labels").empty()) {
    auto labels = core::ReadLabels(flags.GetString("labels"), web.num_nodes());
    if (!labels.ok()) return Fail(labels.status());
    uint64_t tp = 0;
    for (const auto& c : candidates) tp += labels.value().IsSpam(c.node);
    // AUC of relative mass over the rho-filtered population.
    auto filtered = core::PageRankFilteredNodes(
        estimates.value(), config.scaled_pagerank_threshold);
    std::vector<eval::ScoredExample> examples;
    for (graph::NodeId x : filtered) {
      examples.push_back({estimates.value().relative_mass[x],
                          labels.value().IsSpam(x)});
    }
    std::printf("\nagainst ground truth: precision %.3f (%llu of %zu), "
                "AUC over T %.3f\n",
                candidates.empty() ? 0.0
                                   : static_cast<double>(tp) / candidates.size(),
                static_cast<unsigned long long>(tp), candidates.size(),
                eval::ComputeAuc(examples));
  }
  return 0;
}


int CmdSites(int argc, const char* const* argv) {
  util::FlagParser flags;
  flags.Define("edges", "web.edges", "host edge-list input path");
  flags.Define("hosts", "web.hosts", "host-name map input path");
  flags.Define("out-edges", "sites.edges", "site edge-list output path");
  flags.Define("out-hosts", "", "optional site-name map output path");
  int code = 0;
  if (!ParseOrHelp(&flags, "sites", argc, argv, &code)) return code;

  auto graph = graph::ReadEdgeListText(flags.GetString("edges"));
  if (!graph.ok()) return Fail(graph.status());
  util::Status status =
      graph::ReadHostNames(flags.GetString("hosts"), &graph.value());
  if (!status.ok()) return Fail(status);
  auto sites = graph::AggregateToSites(graph.value());
  if (!sites.ok()) return Fail(sites.status());
  status = graph::WriteEdgeListText(sites.value().graph,
                                    flags.GetString("out-edges"));
  if (!status.ok()) return Fail(status);
  if (!flags.GetString("out-hosts").empty()) {
    status = graph::WriteHostNames(sites.value().graph,
                                   flags.GetString("out-hosts"));
    if (!status.ok()) return Fail(status);
  }
  std::printf("aggregated %s hosts into %s sites (%s links) -> %s\n",
              util::FormatWithCommas(graph.value().num_nodes()).c_str(),
              util::FormatWithCommas(sites.value().graph.num_nodes()).c_str(),
              util::FormatWithCommas(sites.value().graph.num_edges()).c_str(),
              flags.GetString("out-edges").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  int sub_argc = argc - 2;
  const char* const* sub_argv = argv + 2;
  if (command == "generate") return CmdGenerate(sub_argc, sub_argv);
  if (command == "stats") return CmdStats(sub_argc, sub_argv);
  if (command == "pagerank") return CmdPageRank(sub_argc, sub_argv);
  if (command == "mass") return CmdMass(sub_argc, sub_argv);
  if (command == "detect") return CmdDetect(sub_argc, sub_argv);
  if (command == "sites") return CmdSites(sub_argc, sub_argv);
  return Usage();
}
