// spammass_cli — command-line front end for the library. Subcommands:
//
//   generate   synthesize a Yahoo-2004-like host graph to disk
//   stats      structural statistics of a graph
//   convert    rewrite a graph between containers (text / v2 / paged v2.2)
//   pagerank   compute (scaled) PageRank scores
//   mass       estimate spam mass from a good-core file
//   detect     run Algorithm 2 and print/save spam candidates
//   sites      aggregate a host graph to the site level
//   run        run a set of registered detectors, write a run manifest
//
// Graph inputs are format-sniffed (pipeline/graph_source.h): text edge
// lists ("src dst" per line) and SMWG binary containers both work
// everywhere a graph is read. Cores are node-id lists (one per line),
// labels are "<id>\t<label>" lines. Run `spammass_cli <command> --help`
// for per-command flags.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/label_io.h"
#include "eval/metrics.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/reorder.h"
#include "graph/site_aggregation.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/stage_timer.h"
#include "obs/trace.h"
#include "pagerank/solver.h"
#include "pipeline/context.h"
#include "pipeline/graph_source.h"
#include "pipeline/manifest.h"
#include "pipeline/pipeline.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "util/file_util.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace spammass;

namespace {

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: spammass_cli "
               "<generate|stats|convert|pagerank|mass|detect|sites|run> "
               "[flags]\n");
  return 2;
}

/// Parses flags; on --help prints the command's flag list and exits.
bool ParseOrHelp(util::FlagParser* flags, const char* command, int argc,
                 const char* const* argv, int* exit_code) {
  flags->DefineBool("help", "show this help");
  util::Status status = flags->Parse(argc, argv);
  if (!status.ok()) {
    *exit_code = Fail(status);
    return false;
  }
  if (flags->GetBool("help")) {
    std::fprintf(stderr, "spammass_cli %s flags:\n%s", command,
                 flags->Help().c_str());
    *exit_code = 0;
    return false;
  }
  return true;
}

// ---- Telemetry lifecycle. Every subcommand defines --trace-out /
// ---- --metrics-out / --metrics-format / --resource-sample-ms and owns
// ---- one ObsSession: tracing and the background resource sampler start
// ---- right after flag parsing (so graph loads are covered), and the
// ---- session writes the requested files on exit — explicitly via
// ---- Finish() on success paths (errors reported), best-effort from the
// ---- destructor otherwise. Construction can fail (bad --metrics-format);
// ---- callers check status() before doing real work.

class ObsSession {
 public:
  static void DefineFlags(util::FlagParser* flags) {
    flags->Define("trace-out", "",
                  "write a Chrome trace-event JSON of this invocation "
                  "(open in Perfetto / chrome://tracing)");
    flags->Define("metrics-out", "",
                  "write a metrics snapshot of this invocation");
    flags->Define("metrics-format", "json",
                  "metrics snapshot format: json | prom (Prometheus text "
                  "exposition)");
    flags->Define("resource-sample-ms", "100",
                  "background RSS/fault/IO sampling period in ms "
                  "(0 disables the sampler thread; a final sample is "
                  "still taken at exit)");
  }

  explicit ObsSession(const util::FlagParser& flags)
      : trace_path_(flags.GetString("trace-out")),
        metrics_path_(flags.GetString("metrics-out")),
        metrics_format_(flags.GetString("metrics-format")),
        sampler_(obs::ResourceSampler::Options{
            std::max<int64_t>(flags.GetInt("resource-sample-ms"), 1)}) {
    if (metrics_format_ != "json" && metrics_format_ != "prom") {
      status_ = util::Status::InvalidArgument(
          "unknown --metrics-format '" + metrics_format_ +
          "' (want json | prom)");
      return;
    }
    if (!trace_path_.empty()) {
      obs::SetCurrentThreadName("main");
      obs::StartTracing();
    }
    // Metrics record unconditionally (shard adds are near-free); the flag
    // only controls whether a snapshot file is written. Resource sampling
    // also runs unconditionally so RSS/fault curves exist in every
    // snapshot; --resource-sample-ms 0 keeps just the exit-time sample.
    if (flags.GetInt("resource-sample-ms") > 0) sampler_.Start();
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() { Finish(); }

  /// Construction outcome; not OK when a telemetry flag was invalid.
  const util::Status& status() const { return status_; }

  /// Stops the sampler and tracing and writes the requested files.
  /// Idempotent; returns the first write error. Both writers create
  /// missing parent directories and name the failing path in errors
  /// (util::WriteTextFile), for the .prom output exactly as for JSON.
  util::Status Finish() {
    if (finished_) return util::Status::OK();
    finished_ = true;
    // One guaranteed exit-time sample, after Stop so it cannot interleave
    // with a background publish: even a run shorter than one period
    // reports real RSS/fault numbers.
    sampler_.Stop();
    sampler_.SampleOnce();
    util::Status result = status_;
    if (!trace_path_.empty()) {
      obs::StopTracing();
      util::Status status = obs::WriteTraceFile(trace_path_);
      if (status.ok()) {
        std::fprintf(stderr, "trace -> %s\n", trace_path_.c_str());
      } else if (result.ok()) {
        result = status;
      }
    }
    if (!metrics_path_.empty()) {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      const std::string snapshot = metrics_format_ == "prom"
                                       ? registry.SnapshotPrometheus()
                                       : registry.SnapshotJson() + "\n";
      util::Status status = util::WriteTextFile(metrics_path_, snapshot);
      if (status.ok()) {
        std::fprintf(stderr, "metrics (%s) -> %s\n", metrics_format_.c_str(),
                     metrics_path_.c_str());
      } else if (result.ok()) {
        result = status;
      }
    }
    return result;
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string metrics_format_;
  obs::ResourceSampler sampler_;
  util::Status status_;
  bool finished_ = false;
};

// ---- Shared flag-definition helpers. Every subcommand that loads a
// ---- graph or configures a solver goes through these; the defaults are
// ---- derived from SolverOptions::BenchPreset() so the CLI cannot drift
// ---- from the preset the eval pipeline and benches use.

void DefineSolverFlags(util::FlagParser* flags) {
  const pagerank::SolverOptions preset = pagerank::SolverOptions::BenchPreset();
  flags->Define("method", pagerank::MethodToString(preset.method),
                "solver: jacobi | gauss-seidel | sor | power-iteration");
  flags->Define("damping", util::StringPrintf("%g", preset.damping),
                "PageRank damping factor c");
  flags->Define("tolerance", util::StringPrintf("%g", preset.tolerance),
                "L1 convergence tolerance");
  flags->Define("max-iterations", std::to_string(preset.max_iterations),
                "iteration cap");
  flags->Define("threads", "1", "solver threads (Jacobi/power only)");
  flags->DefineBool("record-convergence",
                    "record per-iteration residual curves (manifest "
                    "convergence[].residual_curve; plot with "
                    "tools/plot_convergence.py)");
  flags->Define("simd", pagerank::SimdPolicyToString(preset.simd),
                "sweep instruction set: scalar | auto | avx2 | neon "
                "(Jacobi/power only; forcing an unsupported level fails)");
  flags->Define("precision", pagerank::SweepPrecisionToString(preset.precision),
                "sweep lane precision: f64 | mixed-f32 (Jacobi only)");
  flags->DefineBool("compressed-gather",
                    "gather in-edges from the delta+varint compressed "
                    "adjacency (built on load; Jacobi/power only)");
  flags->Define("shards", "1",
                "host-range shard count for the Jacobi sweep: each shard "
                "sweeps its own compact working set, exchanging boundary "
                "rank between sweeps; scores stay bit-identical to "
                "--shards=1 (Jacobi + scalar f64 only)");
}

util::Result<pagerank::SolverOptions> SolverFromFlags(
    const util::FlagParser& flags) {
  pagerank::SolverOptions solver = pagerank::SolverOptions::BenchPreset();
  auto method = pagerank::MethodFromString(flags.GetString("method"));
  if (!method.ok()) return method.status();
  solver.method = method.value();
  solver.damping = flags.GetDouble("damping");
  solver.tolerance = flags.GetDouble("tolerance");
  solver.max_iterations = static_cast<int>(flags.GetInt("max-iterations"));
  solver.num_threads = static_cast<uint32_t>(flags.GetInt("threads"));
  solver.track_residuals = flags.GetBool("record-convergence");
  auto simd = pagerank::SimdPolicyFromString(flags.GetString("simd"));
  if (!simd.ok()) return simd.status();
  solver.simd = simd.value();
  auto precision =
      pagerank::SweepPrecisionFromString(flags.GetString("precision"));
  if (!precision.ok()) return precision.status();
  solver.precision = precision.value();
  solver.compressed_gather = flags.GetBool("compressed-gather");
  solver.shards = static_cast<uint32_t>(flags.GetInt("shards"));
  return solver;
}

void DefineGraphFlags(util::FlagParser* flags) {
  flags->Define("edges", "web.edges",
                "graph input path (text edge list or SMWG binary, "
                "auto-detected)");
  flags->Define("hosts", "", "optional host-name map input path");
  flags->DefineBool("mmap",
                    "map the graph zero-copy instead of reading it onto "
                    "the heap (requires the paged v2.2 SMWG container; "
                    "see 'convert --format paged')");
}

/// Builds a GraphSource from the shared graph flags.
pipeline::GraphSource SourceFromFlags(const util::FlagParser& flags) {
  pipeline::GraphSource source =
      pipeline::GraphSource::FromFile(flags.GetString("edges"));
  if (!flags.GetString("hosts").empty()) {
    source.WithHostNamesFile(flags.GetString("hosts"));
  }
  if (flags.GetBool("mmap")) source.WithMmap();
  return source;
}

void DefineMassFlags(util::FlagParser* flags) {
  flags->Define("core", "good.core", "good-core node-list input path");
  flags->Define("gamma", "0.85", "estimated good fraction (Section 3.5)");
  flags->DefineBool("no-jump-scaling",
                    "use the raw v^core jump instead of the gamma-scaled w");
  DefineSolverFlags(flags);
}

/// Pipeline configuration from the solver + mass flags (those defined by
/// DefineMassFlags, or just DefineSolverFlags for solver-only commands).
util::Result<pipeline::PipelineConfig> ConfigFromFlags(
    const util::FlagParser& flags, bool has_mass_flags) {
  pipeline::PipelineConfig config;
  auto solver = SolverFromFlags(flags);
  if (!solver.ok()) return solver.status();
  config.solver = solver.value();
  if (has_mass_flags) {
    config.gamma = flags.GetDouble("gamma");
    config.scale_core_jump = !flags.GetBool("no-jump-scaling");
  }
  return config;
}

int CmdGenerate(int argc, const char* const* argv) {
  util::FlagParser flags;
  flags.Define("scale", "0.1", "scenario scale (1.0 ~ 170k hosts)");
  flags.Define("seed", "42", "generator seed");
  flags.Define("out-edges", "web.edges", "edge-list output path");
  flags.Define("out-binary", "", "optional SMWG binary (v2) output path");
  flags.Define("out-paged", "",
               "optional paged SMWG (v2.2) output path, mmap-loadable "
               "with --mmap");
  flags.Define("out-hosts", "", "optional host-name map output path");
  flags.Define("out-labels", "", "optional ground-truth label output path");
  flags.Define("out-core", "", "optional assembled good-core output path");
  ObsSession::DefineFlags(&flags);
  int code = 0;
  if (!ParseOrHelp(&flags, "generate", argc, argv, &code)) return code;
  ObsSession obs(flags);
  if (!obs.status().ok()) return Fail(obs.status());

  obs::ScopedStageTimer timer("generate", nullptr);
  auto web = synth::GenerateWeb(synth::Yahoo2004Scenario(
      flags.GetDouble("scale"),
      static_cast<uint64_t>(flags.GetInt("seed"))));
  if (!web.ok()) return Fail(web.status());
  const synth::SyntheticWeb& w = web.value();
  util::Status status =
      graph::WriteEdgeListText(w.graph, flags.GetString("out-edges"));
  if (!status.ok()) return Fail(status);
  if (!flags.GetString("out-binary").empty()) {
    status = graph::WriteBinary(w.graph, flags.GetString("out-binary"));
    if (!status.ok()) return Fail(status);
  }
  if (!flags.GetString("out-paged").empty()) {
    status = graph::WriteBinaryV22(w.graph, flags.GetString("out-paged"));
    if (!status.ok()) return Fail(status);
  }
  if (!flags.GetString("out-hosts").empty()) {
    status = graph::WriteHostNames(w.graph, flags.GetString("out-hosts"));
    if (!status.ok()) return Fail(status);
  }
  if (!flags.GetString("out-labels").empty()) {
    status = core::WriteLabels(w.labels, flags.GetString("out-labels"));
    if (!status.ok()) return Fail(status);
  }
  if (!flags.GetString("out-core").empty()) {
    status = core::WriteNodeList(w.AssembledGoodCore(),
                                 flags.GetString("out-core"));
    if (!status.ok()) return Fail(status);
  }
  std::printf("generated %s hosts, %s links in %.1fs -> %s\n",
              util::FormatWithCommas(w.graph.num_nodes()).c_str(),
              util::FormatWithCommas(w.graph.num_edges()).c_str(),
              timer.Seconds(), flags.GetString("out-edges").c_str());
  util::Status obs_status = obs.Finish();
  if (!obs_status.ok()) return Fail(obs_status);
  return 0;
}

int CmdStats(int argc, const char* const* argv) {
  util::FlagParser flags;
  DefineGraphFlags(&flags);
  ObsSession::DefineFlags(&flags);
  int code = 0;
  if (!ParseOrHelp(&flags, "stats", argc, argv, &code)) return code;
  ObsSession obs(flags);
  if (!obs.status().ok()) return Fail(obs.status());

  pipeline::GraphSource source = SourceFromFlags(flags);
  auto loaded = source.Load();
  if (!loaded.ok()) return Fail(loaded.status());
  auto stats = graph::ComputeGraphStats(loaded.value().graph());
  util::TextTable table;
  table.SetHeader({"metric", "value"});
  table.AddRow({"hosts", util::FormatWithCommas(stats.num_nodes)});
  table.AddRow({"links", util::FormatWithCommas(stats.num_edges)});
  table.AddRow({"no inlinks",
                util::FormatDouble(100 * stats.FractionNoInlinks(), 1) + "%"});
  table.AddRow({"no outlinks",
                util::FormatDouble(100 * stats.FractionNoOutlinks(), 1) + "%"});
  table.AddRow({"isolated",
                util::FormatDouble(100 * stats.FractionIsolated(), 1) + "%"});
  table.AddRow({"max indegree", std::to_string(stats.max_indegree)});
  table.AddRow({"max outdegree", std::to_string(stats.max_outdegree)});
  table.AddRow({"mean degree", util::FormatDouble(stats.mean_indegree, 2)});
  const graph::WebGraph& g = loaded.value().graph();
  if (g.is_mapped()) {
    // Zero-copy load: how much of the mapping the page cache has actually
    // faulted in so far (the out-of-core story in one number), then the
    // same split per array section. Republished as gauges so a
    // --metrics-out snapshot carries the numbers too.
    graph::PublishMappedResidency(g);
    table.AddRow({"mapped bytes", util::FormatWithCommas(g.mapped_bytes())});
    table.AddRow(
        {"resident bytes", util::FormatWithCommas(g.resident_bytes())});
    for (const graph::WebGraph::SectionResidency& s :
         g.MappedSectionResidency()) {
      table.AddRow({std::string("resident ") + s.name,
                    util::FormatWithCommas(s.resident_bytes) + " / " +
                        util::FormatWithCommas(s.mapped_bytes)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  util::Status obs_status = obs.Finish();
  if (!obs_status.ok()) return Fail(obs_status);
  return 0;
}

int CmdConvert(int argc, const char* const* argv) {
  util::FlagParser flags;
  DefineGraphFlags(&flags);
  flags.Define("out", "web.smwg", "converted graph output path");
  flags.Define("format", "paged",
               "output container: paged (v2.2, mmap-loadable) | binary "
               "(v2) | text (edge list)");
  ObsSession::DefineFlags(&flags);
  int code = 0;
  if (!ParseOrHelp(&flags, "convert", argc, argv, &code)) return code;
  ObsSession obs(flags);
  if (!obs.status().ok()) return Fail(obs.status());

  pipeline::GraphSource source = SourceFromFlags(flags);
  auto loaded = source.Load();
  if (!loaded.ok()) return Fail(loaded.status());
  const graph::WebGraph& g = loaded.value().graph();
  const std::string format = flags.GetString("format");
  const std::string out = flags.GetString("out");
  util::Status status;
  if (format == "paged") {
    status = graph::WriteBinaryV22(g, out);
  } else if (format == "binary") {
    status = graph::WriteBinary(g, out);
  } else if (format == "text") {
    status = graph::WriteEdgeListText(g, out);
  } else {
    return Fail(util::Status::InvalidArgument(
        "unknown --format '" + format + "' (want paged | binary | text)"));
  }
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s hosts, %s links as %s -> %s\n",
              util::FormatWithCommas(g.num_nodes()).c_str(),
              util::FormatWithCommas(g.num_edges()).c_str(), format.c_str(),
              out.c_str());
  util::Status obs_status = obs.Finish();
  if (!obs_status.ok()) return Fail(obs_status);
  return 0;
}

int CmdPageRank(int argc, const char* const* argv) {
  util::FlagParser flags;
  DefineGraphFlags(&flags);
  flags.Define("out", "", "CSV output path (node,scaled_pagerank); stdout "
                          "top-20 otherwise");
  flags.Define("top", "20", "rows to print when --out is unset");
  DefineSolverFlags(&flags);
  ObsSession::DefineFlags(&flags);
  int code = 0;
  if (!ParseOrHelp(&flags, "pagerank", argc, argv, &code)) return code;
  ObsSession obs(flags);
  if (!obs.status().ok()) return Fail(obs.status());

  pipeline::GraphSource source = SourceFromFlags(flags);
  auto loaded = source.Load();
  if (!loaded.ok()) return Fail(loaded.status());
  auto config = ConfigFromFlags(flags, /*has_mass_flags=*/false);
  if (!config.ok()) return Fail(config.status());

  obs::ScopedStageTimer timer("pagerank_solve", nullptr);
  pipeline::PipelineContext context(loaded.value(), config.value());
  pipeline::ArtifactNeeds needs;
  needs.base_pagerank = true;
  util::Status status = context.Prepare(needs);
  if (!status.ok()) return Fail(status);
  const pagerank::PageRankResult& pr = context.BasePageRank();
  auto scaled =
      pagerank::ScaledScores(pr.scores, config.value().solver.damping);
  std::fprintf(stderr, "solved in %d sweeps, %.2fs (converged: %s)\n",
               pr.iterations, timer.Seconds(), pr.converged ? "yes" : "no");

  util::TextTable table;
  table.SetHeader({"node", "scaled_pagerank"});
  std::vector<graph::NodeId> order(loaded.value().graph().num_nodes());
  for (graph::NodeId i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](graph::NodeId a, graph::NodeId b) {
    return scaled[a] > scaled[b];
  });
  if (!flags.GetString("out").empty()) {
    for (graph::NodeId x : order) {
      table.AddRow({std::to_string(x), util::FormatDouble(scaled[x], 6)});
    }
    status = table.WriteCsv(flags.GetString("out"));
    if (!status.ok()) return Fail(status);
    std::printf("wrote %u rows to %s\n", loaded.value().graph().num_nodes(),
                flags.GetString("out").c_str());
  } else {
    size_t top = static_cast<size_t>(flags.GetInt("top"));
    for (size_t i = 0; i < order.size() && i < top; ++i) {
      table.AddRow({std::to_string(order[i]),
                    util::FormatDouble(scaled[order[i]], 4)});
    }
    std::printf("%s", table.ToString().c_str());
  }
  util::Status obs_status = obs.Finish();
  if (!obs_status.ok()) return Fail(obs_status);
  return 0;
}

/// Loads the graph + core named by the mass flags and prepares mass
/// estimates through a pipeline context.
util::Result<core::MassEstimates> EstimateFromFlags(
    const util::FlagParser& flags, pipeline::LoadedGraph* loaded_out) {
  pipeline::GraphSource source = SourceFromFlags(flags);
  source.WithCoreFile(flags.GetString("core"));
  auto loaded = source.Load();
  if (!loaded.ok()) return loaded.status();
  auto config = ConfigFromFlags(flags, /*has_mass_flags=*/true);
  if (!config.ok()) return config.status();
  pipeline::PipelineContext context(loaded.value(), config.value());
  pipeline::ArtifactNeeds needs;
  needs.mass_estimates = true;
  util::Status status = context.Prepare(needs);
  if (!status.ok()) return status;
  core::MassEstimates estimates = context.TakeMassEstimates();
  *loaded_out = std::move(loaded.value());
  return estimates;
}

int CmdMass(int argc, const char* const* argv) {
  util::FlagParser flags;
  DefineGraphFlags(&flags);
  DefineMassFlags(&flags);
  flags.Define("out", "mass.csv",
               "CSV output (node,scaled_pagerank,scaled_abs_mass,rel_mass)");
  ObsSession::DefineFlags(&flags);
  int code = 0;
  if (!ParseOrHelp(&flags, "mass", argc, argv, &code)) return code;
  ObsSession obs(flags);
  if (!obs.status().ok()) return Fail(obs.status());

  pipeline::LoadedGraph loaded;
  auto estimates = EstimateFromFlags(flags, &loaded);
  if (!estimates.ok()) return Fail(estimates.status());
  const core::MassEstimates& est = estimates.value();
  const double scale =
      static_cast<double>(est.pagerank.size()) / (1.0 - est.damping);
  util::TextTable table;
  table.SetHeader({"node", "scaled_pagerank", "scaled_abs_mass", "rel_mass"});
  for (size_t x = 0; x < est.pagerank.size(); ++x) {
    table.AddRow({std::to_string(x),
                  util::FormatDouble(est.pagerank[x] * scale, 6),
                  util::FormatDouble(est.absolute_mass[x] * scale, 6),
                  util::FormatDouble(est.relative_mass[x], 6)});
  }
  util::Status status = table.WriteCsv(flags.GetString("out"));
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu rows to %s\n", est.pagerank.size(),
              flags.GetString("out").c_str());
  util::Status obs_status = obs.Finish();
  if (!obs_status.ok()) return Fail(obs_status);
  return 0;
}

int CmdDetect(int argc, const char* const* argv) {
  util::FlagParser flags;
  DefineGraphFlags(&flags);
  DefineMassFlags(&flags);
  flags.Define("tau", "0.98", "relative-mass threshold");
  flags.Define("rho", "10", "scaled-PageRank threshold");
  flags.Define("labels", "", "optional ground-truth labels; prints "
                             "precision and AUC when provided");
  flags.Define("out", "", "optional CSV output of all candidates");
  flags.Define("top", "25", "candidates to print");
  ObsSession::DefineFlags(&flags);
  int code = 0;
  if (!ParseOrHelp(&flags, "detect", argc, argv, &code)) return code;
  ObsSession obs(flags);
  if (!obs.status().ok()) return Fail(obs.status());

  pipeline::LoadedGraph loaded;
  auto estimates = EstimateFromFlags(flags, &loaded);
  if (!estimates.ok()) return Fail(estimates.status());
  const graph::WebGraph& web = loaded.graph();

  core::DetectorConfig config;
  config.relative_mass_threshold = flags.GetDouble("tau");
  config.scaled_pagerank_threshold = flags.GetDouble("rho");
  auto candidates = core::DetectSpamCandidates(estimates.value(), config);
  std::printf("%zu spam candidates (tau=%.2f, rho=%.1f)\n", candidates.size(),
              config.relative_mass_threshold,
              config.scaled_pagerank_threshold);

  util::TextTable table;
  table.SetHeader({"node", "host", "scaled_pagerank", "rel_mass"});
  size_t top = static_cast<size_t>(flags.GetInt("top"));
  for (size_t i = 0; i < candidates.size() && i < top; ++i) {
    const auto& c = candidates[i];
    table.AddRow({std::to_string(c.node), std::string(web.HostName(c.node)),
                  util::FormatDouble(c.scaled_pagerank, 2),
                  util::FormatDouble(c.relative_mass, 4)});
  }
  std::printf("%s", table.ToString().c_str());

  if (!flags.GetString("out").empty()) {
    util::TextTable csv;
    csv.SetHeader({"node", "scaled_pagerank", "rel_mass"});
    for (const auto& c : candidates) {
      csv.AddRow({std::to_string(c.node),
                  util::FormatDouble(c.scaled_pagerank, 6),
                  util::FormatDouble(c.relative_mass, 6)});
    }
    util::Status status = csv.WriteCsv(flags.GetString("out"));
    if (!status.ok()) return Fail(status);
  }

  if (!flags.GetString("labels").empty()) {
    auto labels = core::ReadLabels(flags.GetString("labels"), web.num_nodes());
    if (!labels.ok()) return Fail(labels.status());
    uint64_t tp = 0;
    for (const auto& c : candidates) tp += labels.value().IsSpam(c.node);
    // AUC of relative mass over the rho-filtered population.
    auto filtered = core::PageRankFilteredNodes(
        estimates.value(), config.scaled_pagerank_threshold);
    std::vector<eval::ScoredExample> examples;
    for (graph::NodeId x : filtered) {
      examples.push_back({estimates.value().relative_mass[x],
                          labels.value().IsSpam(x)});
    }
    std::printf("\nagainst ground truth: precision %.3f (%llu of %zu), "
                "AUC over T %.3f\n",
                candidates.empty() ? 0.0
                                   : static_cast<double>(tp) / candidates.size(),
                static_cast<unsigned long long>(tp), candidates.size(),
                eval::ComputeAuc(examples));
  }
  util::Status obs_status = obs.Finish();
  if (!obs_status.ok()) return Fail(obs_status);
  return 0;
}

int CmdSites(int argc, const char* const* argv) {
  util::FlagParser flags;
  flags.Define("edges", "web.edges",
               "host graph input path (text or SMWG binary)");
  flags.Define("hosts", "web.hosts", "host-name map input path");
  flags.Define("out-edges", "sites.edges", "site edge-list output path");
  flags.Define("out-hosts", "", "optional site-name map output path");
  ObsSession::DefineFlags(&flags);
  int code = 0;
  if (!ParseOrHelp(&flags, "sites", argc, argv, &code)) return code;
  ObsSession obs(flags);
  if (!obs.status().ok()) return Fail(obs.status());

  pipeline::GraphSource source =
      pipeline::GraphSource::FromFile(flags.GetString("edges"));
  source.WithHostNamesFile(flags.GetString("hosts"));
  auto loaded = source.Load();
  if (!loaded.ok()) return Fail(loaded.status());
  auto sites = graph::AggregateToSites(loaded.value().graph());
  if (!sites.ok()) return Fail(sites.status());
  util::Status status = graph::WriteEdgeListText(
      sites.value().graph, flags.GetString("out-edges"));
  if (!status.ok()) return Fail(status);
  if (!flags.GetString("out-hosts").empty()) {
    status = graph::WriteHostNames(sites.value().graph,
                                   flags.GetString("out-hosts"));
    if (!status.ok()) return Fail(status);
  }
  std::printf("aggregated %s hosts into %s sites (%s links) -> %s\n",
              util::FormatWithCommas(loaded.value().graph().num_nodes()).c_str(),
              util::FormatWithCommas(sites.value().graph.num_nodes()).c_str(),
              util::FormatWithCommas(sites.value().graph.num_edges()).c_str(),
              flags.GetString("out-edges").c_str());
  util::Status obs_status = obs.Finish();
  if (!obs_status.ok()) return Fail(obs_status);
  return 0;
}

int CmdRun(int argc, const char* const* argv) {
  util::FlagParser flags;
  flags.Define("graph", "web.edges",
               "comma-separated graph inputs; each entry is a file path "
               "(text or SMWG binary, sniffed) or "
               "'synthetic:<scale>:<seed>'");
  flags.Define("detectors", "spam_mass,trustrank",
               "comma-separated detector names (see --list-detectors)");
  flags.DefineBool("list-detectors", "print registered detectors and exit");
  flags.Define("core", "", "good-core node-list applied to file graphs");
  flags.Define("labels", "", "ground-truth labels applied to file graphs");
  flags.Define("hosts", "", "host-name map applied to file graphs");
  flags.Define("manifest", "run_manifest.json", "manifest JSON output path");
  flags.Define("gamma", "0.85", "estimated good fraction (Section 3.5)");
  flags.DefineBool("no-jump-scaling",
                   "use the raw v^core jump instead of the gamma-scaled w");
  DefineSolverFlags(&flags);
  flags.Define("tau", "0.98", "relative-mass threshold (Algorithm 2)");
  flags.Define("rho", "10", "scaled-PageRank threshold (Algorithm 2)");
  flags.Define("reorder", "none",
               "locality-aware vertex reordering before the solves: none | "
               "degree | bfs | rcm (outputs stay in original node IDs)");
  flags.DefineBool("mmap",
                   "map file graphs zero-copy (paged v2.2 containers only)");
  ObsSession::DefineFlags(&flags);
  int code = 0;
  if (!ParseOrHelp(&flags, "run", argc, argv, &code)) return code;

  if (flags.GetBool("list-detectors")) {
    for (const std::string& name :
         pipeline::DetectorRegistry::Global().Names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  ObsSession obs(flags);
  if (!obs.status().ok()) return Fail(obs.status());

  auto config = ConfigFromFlags(flags, /*has_mass_flags=*/true);
  if (!config.ok()) return Fail(config.status());
  config.value().detection.relative_mass_threshold = flags.GetDouble("tau");
  config.value().detection.scaled_pagerank_threshold = flags.GetDouble("rho");
  auto reorder = graph::ReorderKindFromString(flags.GetString("reorder"));
  if (!reorder.ok()) return Fail(reorder.status());
  config.value().reorder = reorder.value();

  std::vector<std::string> detector_names;
  for (const std::string& name : util::Split(flags.GetString("detectors"),
                                             ',')) {
    if (!name.empty()) detector_names.push_back(name);
  }
  if (detector_names.empty()) {
    return Fail(util::Status::InvalidArgument("no detectors selected"));
  }

  const std::vector<std::string> graph_specs =
      util::Split(flags.GetString("graph"), ',');

  // One manifest wrapping every per-graph run.
  util::JsonWriter manifest;
  manifest.BeginObject();
  manifest.KV("schema_version", 3);
  manifest.KV("tool", "spammass_cli run");
  manifest.Key("runs").BeginArray();

  for (const std::string& spec : graph_specs) {
    if (spec.empty()) continue;
    pipeline::GraphSource source = pipeline::GraphSource::FromFile(spec);
    if (spec.rfind("synthetic:", 0) == 0) {
      const std::vector<std::string> parts = util::Split(spec, ':');
      if (parts.size() != 3) {
        return Fail(util::Status::InvalidArgument(
            "synthetic graph spec must be 'synthetic:<scale>:<seed>': " +
            spec));
      }
      source = pipeline::GraphSource::Scenario(
          std::strtod(parts[1].c_str(), nullptr),
          std::strtoull(parts[2].c_str(), nullptr, 10));
    } else {
      if (!flags.GetString("core").empty()) {
        source.WithCoreFile(flags.GetString("core"));
      }
      if (!flags.GetString("labels").empty()) {
        source.WithLabelsFile(flags.GetString("labels"));
      }
      if (!flags.GetString("hosts").empty()) {
        source.WithHostNamesFile(flags.GetString("hosts"));
      }
      if (flags.GetBool("mmap")) source.WithMmap();
    }

    auto run =
        pipeline::RunDetectors(source, config.value(), detector_names);
    if (!run.ok()) return Fail(run.status());

    std::printf("%s [%s]: %s hosts, %s links\n",
                run.value().source.description.c_str(),
                pipeline::GraphFormatToString(run.value().source.format),
                util::FormatWithCommas(
                    run.value().source.graph().num_nodes()).c_str(),
                util::FormatWithCommas(
                    run.value().source.graph().num_edges()).c_str());
    util::TextTable table;
    table.SetHeader({"detector", "flagged", "seconds"});
    for (const pipeline::DetectorOutput& output : run.value().detectors) {
      table.AddRow({output.detector, std::to_string(output.flagged_count),
                    util::FormatDouble(output.seconds, 3)});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("base PageRank solves: %llu (shared across detectors)\n\n",
                static_cast<unsigned long long>(
                    run.value().base_pagerank_solves));

    // Splice the per-run manifest (already-valid JSON) into the wrapper.
    manifest.RawValue(run.value().manifest_json);
  }

  manifest.EndArray();
  manifest.EndObject();
  const std::string manifest_path = flags.GetString("manifest");
  util::Status status =
      pipeline::WriteManifestFile(manifest.TakeString(), manifest_path);
  if (!status.ok()) return Fail(status);
  std::printf("manifest -> %s\n", manifest_path.c_str());
  util::Status obs_status = obs.Finish();
  if (!obs_status.ok()) return Fail(obs_status);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  int sub_argc = argc - 2;
  const char* const* sub_argv = argv + 2;
  if (command == "generate") return CmdGenerate(sub_argc, sub_argv);
  if (command == "stats") return CmdStats(sub_argc, sub_argv);
  if (command == "convert") return CmdConvert(sub_argc, sub_argv);
  if (command == "pagerank") return CmdPageRank(sub_argc, sub_argv);
  if (command == "mass") return CmdMass(sub_argc, sub_argv);
  if (command == "detect") return CmdDetect(sub_argc, sub_argv);
  if (command == "sites") return CmdSites(sub_argc, sub_argv);
  if (command == "run") return CmdRun(sub_argc, sub_argv);
  return Usage();
}
