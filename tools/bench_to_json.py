#!/usr/bin/env python3
"""Run the solver perf benchmarks and collect one merged JSON report.

Each google-benchmark binary is run with --benchmark_out=<tmp>.json
(--benchmark_format JSON), the per-benchmark entries are merged, and the
seed-vs-kernel speedup ratios the PR's acceptance criteria track are
derived from the paired entries:

  * jacobi_single_thread_speedup:
        BM_SeedJacobiBaseline / BM_WeightedJacobi
  * spam_mass_two_solve_speedup (on the shared synthetic web):
        BM_SeedMassEstimationSharedWeb / BM_FusedMassEstimationSharedWeb
  * spam_mass_two_solve_speedup_large (200k-node random web):
        BM_SeedMassEstimationBaseline / BM_FusedMassEstimation
  * parallel_pool_reuse_speedup_T<k>:
        BM_ParallelJacobiFreshPool/<k> / BM_ParallelJacobiWorkspace/<k>
  * multi_solve_amortization_k<k>:
        BM_IndependentSolves/<k> / BM_FusedMultiSolve/<k>

Usage:
    tools/bench_to_json.py --bench-dir build/bench --out BENCH_solver.json \
        [--min-time 0.1]

The CI perf-smoke job uploads the resulting file as an artifact; no
thresholds are enforced here (machine variance makes hard gates flaky) —
the ratios are recorded for human inspection and trend tracking.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

BENCH_BINARIES = ["bench_solver_perf", "bench_multi_solve"]

RATIO_PAIRS = [
    ("jacobi_single_thread_speedup", "BM_SeedJacobiBaseline",
     "BM_WeightedJacobi"),
    ("spam_mass_two_solve_speedup", "BM_SeedMassEstimationSharedWeb",
     "BM_FusedMassEstimationSharedWeb"),
    ("spam_mass_two_solve_speedup_large", "BM_SeedMassEstimationBaseline",
     "BM_FusedMassEstimation"),
    ("parallel_pool_reuse_speedup_T2", "BM_ParallelJacobiFreshPool/2",
     "BM_ParallelJacobiWorkspace/2"),
    ("parallel_pool_reuse_speedup_T4", "BM_ParallelJacobiFreshPool/4",
     "BM_ParallelJacobiWorkspace/4"),
    ("multi_solve_amortization_k2", "BM_IndependentSolves/2",
     "BM_FusedMultiSolve/2"),
    ("multi_solve_amortization_k4", "BM_IndependentSolves/4",
     "BM_FusedMultiSolve/4"),
    ("multi_solve_amortization_k8", "BM_IndependentSolves/8",
     "BM_FusedMultiSolve/8"),
]


def run_bench(binary, min_time):
    """Runs one benchmark binary, returns its parsed JSON report."""
    fd, out_path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        cmd = [
            binary,
            f"--benchmark_out={out_path}",
            "--benchmark_out_format=json",
        ]
        if min_time:
            cmd.append(f"--benchmark_min_time={min_time}")
        subprocess.run(cmd, check=True)
        with open(out_path, encoding="utf-8") as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def real_time_ms(entry):
    unit = entry.get("time_unit", "ns")
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
    return entry["real_time"] * scale


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", required=True,
                        help="directory holding the built bench binaries")
    parser.add_argument("--out", required=True,
                        help="path of the merged JSON report")
    parser.add_argument("--min-time", default=None,
                        help="forwarded as --benchmark_min_time in seconds (e.g. 0.1)")
    args = parser.parse_args()

    merged = {"context": None, "benchmarks": [], "speedups": {}}
    times = {}
    for name in BENCH_BINARIES:
        binary = os.path.join(args.bench_dir, name)
        if not os.path.exists(binary):
            print(f"error: {binary} not built", file=sys.stderr)
            return 1
        report = run_bench(binary, args.min_time)
        if merged["context"] is None:
            merged["context"] = report.get("context")
        for entry in report.get("benchmarks", []):
            entry["binary"] = name
            merged["benchmarks"].append(entry)
            times[entry["name"]] = real_time_ms(entry)

    for label, baseline, optimized in RATIO_PAIRS:
        if baseline in times and optimized in times and times[optimized] > 0:
            merged["speedups"][label] = times[baseline] / times[optimized]

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    for label, ratio in merged["speedups"].items():
        print(f"  {label}: {ratio:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
