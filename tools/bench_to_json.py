#!/usr/bin/env python3
"""Run a perf benchmark suite and collect one merged JSON report.

Each google-benchmark binary of the selected suite is run with
--benchmark_out=<tmp>.json (--benchmark_format JSON), the per-benchmark
entries are merged, and the baseline-vs-optimized speedup ratios the PRs'
acceptance criteria track are derived from the paired entries.

Suite `solver` (bench_solver_perf + bench_multi_solve):

  * jacobi_single_thread_speedup:
        BM_SeedJacobiBaseline / BM_WeightedJacobi
  * spam_mass_two_solve_speedup (on the shared synthetic web):
        BM_SeedMassEstimationSharedWeb / BM_FusedMassEstimationSharedWeb
  * spam_mass_two_solve_speedup_large (200k-node random web):
        BM_SeedMassEstimationBaseline / BM_FusedMassEstimation
  * parallel_pool_reuse_speedup_T<k>:
        BM_ParallelJacobiFreshPool/<k> / BM_ParallelJacobiWorkspace/<k>
  * multi_solve_amortization_k<k>:
        BM_IndependentSolves/<k> / BM_FusedMultiSolve/<k>

Suite `graph` (bench_graph_ops, 100k-node ingest fixtures):

  * graph_build_parallel_speedup_T<k>:
        BM_CsrBuildSerial / BM_CsrBuildParallel/<k>
  * graph_transpose_parallel_speedup_T<k>:
        BM_TransposeSerial / BM_TransposeParallel/<k>
  * binary_load_v2_speedup:
        BM_BinaryLoadV1 / BM_BinaryLoadV2

Suite `pipeline` (bench_pipeline, shared synthetic web):

  * pipeline_two_detector_cache_speedup:
        BM_TwoDetectorsIndependentRuns / BM_TwoDetectorsSharedContext
    (the artifact cache sharing one base PageRank solve between spam mass
    and TrustRank, with every forward solve fused into one multi-RHS
    stream, vs. each detector preparing its own context)

Suite `obs` (bench_obs, 100k-node random web): ratios here are overhead
factors (instrumented time / hooks-off baseline time), not speedups —
values near 1.0 are good, and the PR 5 acceptance criterion is that
obs_disabled_overhead_T* stays ≤1.02:

  * obs_disabled_overhead_T<k>:
        BM_JacobiSweepObsDisabled/<k> / BM_JacobiSweepNoHooks/<k>
  * obs_tracing_overhead_T<k>:
        BM_JacobiSweepTracingEnabled/<k> / BM_JacobiSweepNoHooks/<k>

Usage:
    tools/bench_to_json.py --bench-dir build/bench --out BENCH_solver.json \
        [--suite solver|graph] [--min-time 0.1]

The CI perf-smoke job uploads the resulting files as artifacts; no
thresholds are enforced here (machine variance makes hard gates flaky) —
the ratios are recorded for human inspection and trend tracking.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SOLVER_RATIO_PAIRS = [
    ("jacobi_single_thread_speedup", "BM_SeedJacobiBaseline",
     "BM_WeightedJacobi"),
    ("spam_mass_two_solve_speedup", "BM_SeedMassEstimationSharedWeb",
     "BM_FusedMassEstimationSharedWeb"),
    ("spam_mass_two_solve_speedup_large", "BM_SeedMassEstimationBaseline",
     "BM_FusedMassEstimation"),
    ("parallel_pool_reuse_speedup_T2", "BM_ParallelJacobiFreshPool/2",
     "BM_ParallelJacobiWorkspace/2"),
    ("parallel_pool_reuse_speedup_T4", "BM_ParallelJacobiFreshPool/4",
     "BM_ParallelJacobiWorkspace/4"),
    ("multi_solve_amortization_k2", "BM_IndependentSolves/2",
     "BM_FusedMultiSolve/2"),
    ("multi_solve_amortization_k4", "BM_IndependentSolves/4",
     "BM_FusedMultiSolve/4"),
    ("multi_solve_amortization_k8", "BM_IndependentSolves/8",
     "BM_FusedMultiSolve/8"),
]

GRAPH_RATIO_PAIRS = [
    ("graph_build_parallel_speedup_T2", "BM_CsrBuildSerial",
     "BM_CsrBuildParallel/2"),
    ("graph_build_parallel_speedup_T4", "BM_CsrBuildSerial",
     "BM_CsrBuildParallel/4"),
    ("graph_build_parallel_speedup_T8", "BM_CsrBuildSerial",
     "BM_CsrBuildParallel/8"),
    ("graph_transpose_parallel_speedup_T2", "BM_TransposeSerial",
     "BM_TransposeParallel/2"),
    ("graph_transpose_parallel_speedup_T4", "BM_TransposeSerial",
     "BM_TransposeParallel/4"),
    ("graph_transpose_parallel_speedup_T8", "BM_TransposeSerial",
     "BM_TransposeParallel/8"),
    ("binary_load_v2_speedup", "BM_BinaryLoadV1", "BM_BinaryLoadV2"),
]

PIPELINE_RATIO_PAIRS = [
    ("pipeline_two_detector_cache_speedup", "BM_TwoDetectorsIndependentRuns",
     "BM_TwoDetectorsSharedContext"),
]

# Overhead factors: instrumented entry over the hooks-off baseline. The
# (label, numerator, denominator) order is flipped relative to the speedup
# suites because the interesting number is how much slower telemetry makes
# the sweep, not how much faster.
OBS_RATIO_PAIRS = [
    ("obs_disabled_overhead_T2", "BM_JacobiSweepObsDisabled/2",
     "BM_JacobiSweepNoHooks/2"),
    ("obs_disabled_overhead_T4", "BM_JacobiSweepObsDisabled/4",
     "BM_JacobiSweepNoHooks/4"),
    ("obs_tracing_overhead_T2", "BM_JacobiSweepTracingEnabled/2",
     "BM_JacobiSweepNoHooks/2"),
    ("obs_tracing_overhead_T4", "BM_JacobiSweepTracingEnabled/4",
     "BM_JacobiSweepNoHooks/4"),
]

SUITES = {
    "solver": {
        "binaries": ["bench_solver_perf", "bench_multi_solve"],
        "ratios": SOLVER_RATIO_PAIRS,
    },
    "graph": {
        "binaries": ["bench_graph_ops"],
        "ratios": GRAPH_RATIO_PAIRS,
    },
    "pipeline": {
        "binaries": ["bench_pipeline"],
        "ratios": PIPELINE_RATIO_PAIRS,
    },
    "obs": {
        "binaries": ["bench_obs"],
        "ratios": OBS_RATIO_PAIRS,
    },
}


def run_bench(binary, min_time):
    """Runs one benchmark binary, returns its parsed JSON report."""
    fd, out_path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        cmd = [
            binary,
            f"--benchmark_out={out_path}",
            "--benchmark_out_format=json",
        ]
        if min_time:
            cmd.append(f"--benchmark_min_time={min_time}")
        subprocess.run(cmd, check=True)
        with open(out_path, encoding="utf-8") as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def real_time_ms(entry):
    unit = entry.get("time_unit", "ns")
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
    return entry["real_time"] * scale


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", required=True,
                        help="directory holding the built bench binaries")
    parser.add_argument("--out", required=True,
                        help="path of the merged JSON report")
    parser.add_argument("--suite", default="solver", choices=sorted(SUITES),
                        help="which benchmark suite to run (default: solver)")
    parser.add_argument("--min-time", default=None,
                        help="forwarded as --benchmark_min_time in seconds (e.g. 0.1)")
    args = parser.parse_args()
    suite = SUITES[args.suite]

    merged = {"context": None, "benchmarks": [], "speedups": {}}
    times = {}
    for name in suite["binaries"]:
        binary = os.path.join(args.bench_dir, name)
        if not os.path.exists(binary):
            print(f"error: {binary} not built", file=sys.stderr)
            return 1
        report = run_bench(binary, args.min_time)
        if merged["context"] is None:
            merged["context"] = report.get("context")
        for entry in report.get("benchmarks", []):
            entry["binary"] = name
            merged["benchmarks"].append(entry)
            times[entry["name"]] = real_time_ms(entry)

    for label, baseline, optimized in suite["ratios"]:
        if baseline in times and optimized in times and times[optimized] > 0:
            merged["speedups"][label] = times[baseline] / times[optimized]

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    for label, ratio in merged["speedups"].items():
        print(f"  {label}: {ratio:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
