#!/usr/bin/env python3
"""Run a perf benchmark suite and collect one merged JSON report.

Each google-benchmark binary of the selected suite is run with
--benchmark_out=<tmp>.json (--benchmark_format JSON), the per-benchmark
entries are merged, and the baseline-vs-optimized speedup ratios the PRs'
acceptance criteria track are derived from the paired entries.

Suite `solver` (bench_solver_perf + bench_multi_solve):

  * jacobi_single_thread_speedup:
        BM_SeedJacobiBaseline / BM_WeightedJacobi
  * spam_mass_two_solve_speedup (on the shared synthetic web):
        BM_SeedMassEstimationSharedWeb / BM_FusedMassEstimationSharedWeb
  * spam_mass_two_solve_speedup_large (200k-node random web):
        BM_SeedMassEstimationBaseline / BM_FusedMassEstimation
  * parallel_pool_reuse_speedup_T<k>:
        BM_ParallelJacobiFreshPool/<k> / BM_ParallelJacobiWorkspace/<k>
  * multi_solve_amortization_k<k>:
        BM_IndependentSolves/<k> / BM_FusedMultiSolve/<k>
  * simd_multi_rhs_speedup_k4 (bench_sweep_variants, power-law web):
        BM_SweepScalarF64Plain / BM_SweepSimdF64Plain
  * compressed_gather_speedup_k4 / mixed_precision_speedup_k4 /
    full_variant_speedup_k4: the scalar/f64/plain sweep over the
    compressed, mixed-f32, and simd+f32+compressed variants
  * reorder_degree_sweep_speedup / reorder_bfs_sweep_speedup:
        crawl-order sweep over the locality-reordered sweep
    plus `bytes_per_edge`: the modelled traffic counters of the plain
    f64 sweep vs. the f32+compressed sweep and the relative reduction.

Suite `graph` (bench_graph_ops, 100k-node ingest fixtures):

  * graph_build_parallel_speedup_T<k>:
        BM_CsrBuildSerial / BM_CsrBuildParallel/<k>
  * graph_transpose_parallel_speedup_T<k>:
        BM_TransposeSerial / BM_TransposeParallel/<k>
  * binary_load_v2_speedup:
        BM_BinaryLoadV1 / BM_BinaryLoadV2

Suite `pipeline` (bench_pipeline, shared synthetic web):

  * pipeline_two_detector_cache_speedup:
        BM_TwoDetectorsIndependentRuns / BM_TwoDetectorsSharedContext
    (the artifact cache sharing one base PageRank solve between spam mass
    and TrustRank, with every forward solve fused into one multi-RHS
    stream, vs. each detector preparing its own context)

Suite `shard` (bench_shard, 300k-node power-law web, ~50 MB CSR):

  * mmap_load_speedup (the PR 8 acceptance metric, target ≥10×):
        BM_PagedLoadHeap / BM_PagedLoadMmap
    (full-validation heap load of a v2.2 file over the zero-copy
    sample-checksum mmap load of the same file)
  * mmap_vs_v2_load_speedup:
        BM_BinaryLoadV2Heap / BM_PagedLoadMmap
    (the legacy v2 streaming load over the paged mmap load — the
    end-to-end win of migrating a deployment to the paged container)
  * shard_sweep_speedup_S<k>:
        BM_ShardedSweep/1 / BM_ShardedSweep/<k>
    (unsharded multi-RHS Jacobi over the k-shard run, 4 threads; bit-
    identical results by construction, so this is pure locality effect)

Suite `obs` (bench_obs, 100k-node random web): ratios here are overhead
factors (instrumented time / hooks-off baseline time), not speedups —
values near 1.0 are good, and the PR 5 acceptance criterion is that
obs_disabled_overhead_T* stays ≤1.02:

  * obs_disabled_overhead_T<k>:
        BM_JacobiSweepObsDisabled/<k> / BM_JacobiSweepNoHooks/<k>
  * obs_tracing_overhead_T<k>:
        BM_JacobiSweepTracingEnabled/<k> / BM_JacobiSweepNoHooks/<k>
  * obs_sampler10ms_overhead_T<k> / obs_sampler100ms_overhead_T<k>:
        BM_JacobiSweepSampler{10,100}ms/<k> / BM_JacobiSweepNoHooks/<k>
    (the background resource sampler added on top of the default
    telemetry state; 100 ms is the CLI default period)

The disabled-path and sampler overhead labels share the ≤1.02 budget:
ratios above it print a BUDGET warning (like --baseline regressions, a
warning rather than a hard gate — machine variance makes gates flaky).

Usage:
    tools/bench_to_json.py --bench-dir build/bench --out BENCH_solver.json \
        [--suite solver|graph] [--min-time 0.1] [--baseline BENCH_solver.json]

Build-type guard: every bench binary stamps `spammass_build_type`
(release/debug, from its own NDEBUG) into the report context via
SPAMMASS_BENCHMARK_MAIN(). Reports from a non-release build are refused —
debug numbers are meaningless and once burned us by landing in the
committed BENCH_solver.json (its context still said
"library_build_type": "debug"). `--allow-non-release` downgrades the
refusal to a loud warning and stamps `"non_release_build": true` into the
output so the file can never masquerade as a real measurement.

Regression guard: `--baseline <committed BENCH_*.json>` compares every
derived ratio against the committed run and warns when one drops by more
than 10%. Warnings only — machine variance makes hard gates flaky — but
they make a silent slowdown visible in the CI log.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SOLVER_RATIO_PAIRS = [
    ("jacobi_single_thread_speedup", "BM_SeedJacobiBaseline",
     "BM_WeightedJacobi"),
    ("spam_mass_two_solve_speedup", "BM_SeedMassEstimationSharedWeb",
     "BM_FusedMassEstimationSharedWeb"),
    ("spam_mass_two_solve_speedup_large", "BM_SeedMassEstimationBaseline",
     "BM_FusedMassEstimation"),
    ("parallel_pool_reuse_speedup_T2", "BM_ParallelJacobiFreshPool/2",
     "BM_ParallelJacobiWorkspace/2"),
    ("parallel_pool_reuse_speedup_T4", "BM_ParallelJacobiFreshPool/4",
     "BM_ParallelJacobiWorkspace/4"),
    ("multi_solve_amortization_k2", "BM_IndependentSolves/2",
     "BM_FusedMultiSolve/2"),
    ("multi_solve_amortization_k4", "BM_IndependentSolves/4",
     "BM_FusedMultiSolve/4"),
    ("multi_solve_amortization_k8", "BM_IndependentSolves/8",
     "BM_FusedMultiSolve/8"),
    ("simd_multi_rhs_speedup_k4", "BM_SweepScalarF64Plain",
     "BM_SweepSimdF64Plain"),
    ("compressed_gather_speedup_k4", "BM_SweepScalarF64Plain",
     "BM_SweepScalarF64Compressed"),
    ("mixed_precision_speedup_k4", "BM_SweepScalarF64Plain",
     "BM_SweepScalarF32Plain"),
    ("full_variant_speedup_k4", "BM_SweepScalarF64Plain",
     "BM_SweepSimdF32Compressed"),
    ("reorder_degree_sweep_speedup", "BM_SweepScalarF64Plain",
     "BM_SweepReorderedDegree"),
    ("reorder_bfs_sweep_speedup", "BM_SweepScalarF64Plain",
     "BM_SweepReorderedBfs"),
]

GRAPH_RATIO_PAIRS = [
    ("graph_build_parallel_speedup_T2", "BM_CsrBuildSerial",
     "BM_CsrBuildParallel/2"),
    ("graph_build_parallel_speedup_T4", "BM_CsrBuildSerial",
     "BM_CsrBuildParallel/4"),
    ("graph_build_parallel_speedup_T8", "BM_CsrBuildSerial",
     "BM_CsrBuildParallel/8"),
    ("graph_transpose_parallel_speedup_T2", "BM_TransposeSerial",
     "BM_TransposeParallel/2"),
    ("graph_transpose_parallel_speedup_T4", "BM_TransposeSerial",
     "BM_TransposeParallel/4"),
    ("graph_transpose_parallel_speedup_T8", "BM_TransposeSerial",
     "BM_TransposeParallel/8"),
    ("binary_load_v2_speedup", "BM_BinaryLoadV1", "BM_BinaryLoadV2"),
]

PIPELINE_RATIO_PAIRS = [
    ("pipeline_two_detector_cache_speedup", "BM_TwoDetectorsIndependentRuns",
     "BM_TwoDetectorsSharedContext"),
]

SHARD_RATIO_PAIRS = [
    ("mmap_load_speedup", "BM_PagedLoadHeap", "BM_PagedLoadMmap"),
    ("mmap_vs_v2_load_speedup", "BM_BinaryLoadV2Heap", "BM_PagedLoadMmap"),
    ("shard_sweep_speedup_S2", "BM_ShardedSweep/1", "BM_ShardedSweep/2"),
    ("shard_sweep_speedup_S4", "BM_ShardedSweep/1", "BM_ShardedSweep/4"),
    ("shard_sweep_speedup_S8", "BM_ShardedSweep/1", "BM_ShardedSweep/8"),
]

# Overhead factors: instrumented entry over the hooks-off baseline. The
# (label, numerator, denominator) order is flipped relative to the speedup
# suites because the interesting number is how much slower telemetry makes
# the sweep, not how much faster.
OBS_RATIO_PAIRS = [
    ("obs_disabled_overhead_T2", "BM_JacobiSweepObsDisabled/2",
     "BM_JacobiSweepNoHooks/2"),
    ("obs_disabled_overhead_T4", "BM_JacobiSweepObsDisabled/4",
     "BM_JacobiSweepNoHooks/4"),
    ("obs_tracing_overhead_T2", "BM_JacobiSweepTracingEnabled/2",
     "BM_JacobiSweepNoHooks/2"),
    ("obs_tracing_overhead_T4", "BM_JacobiSweepTracingEnabled/4",
     "BM_JacobiSweepNoHooks/4"),
    ("obs_sampler10ms_overhead_T2", "BM_JacobiSweepSampler10ms/2",
     "BM_JacobiSweepNoHooks/2"),
    ("obs_sampler10ms_overhead_T4", "BM_JacobiSweepSampler10ms/4",
     "BM_JacobiSweepNoHooks/4"),
    ("obs_sampler100ms_overhead_T2", "BM_JacobiSweepSampler100ms/2",
     "BM_JacobiSweepNoHooks/2"),
    ("obs_sampler100ms_overhead_T4", "BM_JacobiSweepSampler100ms/4",
     "BM_JacobiSweepNoHooks/4"),
]

# Overhead labels held to the ≤1.02 default-state budget (the PR 5
# criterion, extended to the resource sampler): the telemetry they measure
# is always on in production runs, so it must stay in the noise. Tracing
# overhead is exempt — tracing is opt-in and buys its cost back in
# visibility.
OBS_BUDGETED_PREFIXES = ("obs_disabled_overhead", "obs_sampler")
OBS_OVERHEAD_BUDGET = 1.02

SUITES = {
    "solver": {
        "binaries": ["bench_solver_perf", "bench_multi_solve",
                     "bench_sweep_variants"],
        "ratios": SOLVER_RATIO_PAIRS,
    },
    "graph": {
        "binaries": ["bench_graph_ops"],
        "ratios": GRAPH_RATIO_PAIRS,
    },
    "pipeline": {
        "binaries": ["bench_pipeline"],
        "ratios": PIPELINE_RATIO_PAIRS,
    },
    "obs": {
        "binaries": ["bench_obs"],
        "ratios": OBS_RATIO_PAIRS,
    },
    "shard": {
        "binaries": ["bench_shard"],
        "ratios": SHARD_RATIO_PAIRS,
    },
}


def run_bench(binary, min_time):
    """Runs one benchmark binary, returns its parsed JSON report."""
    fd, out_path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        cmd = [
            binary,
            f"--benchmark_out={out_path}",
            "--benchmark_out_format=json",
        ]
        if min_time:
            cmd.append(f"--benchmark_min_time={min_time}")
        subprocess.run(cmd, check=True)
        with open(out_path, encoding="utf-8") as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def real_time_ms(entry):
    unit = entry.get("time_unit", "ns")
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
    return entry["real_time"] * scale


def report_build_type(report, binary):
    """The build type a bench report was produced by.

    Prefers the `spammass_build_type` context key (stamped by
    SPAMMASS_BENCHMARK_MAIN from the bench binary's own NDEBUG); falls
    back to google-benchmark's `library_build_type`, which only describes
    the benchmark *library* and may disagree with the bench code.
    """
    context = report.get("context") or {}
    build_type = context.get("spammass_build_type")
    if build_type is None:
        build_type = context.get("library_build_type", "unknown")
        print(f"warning: {binary} lacks spammass_build_type context; "
              f"falling back to library_build_type={build_type!r}",
              file=sys.stderr)
    return build_type


def check_regressions(speedups, baseline_path, threshold=0.10):
    """Warns about ratios that dropped >threshold vs. the committed run."""
    try:
        with open(baseline_path, encoding="utf-8") as f:
            baseline = json.load(f).get("speedups", {})
    except (OSError, json.JSONDecodeError) as e:
        print(f"warning: cannot read baseline {baseline_path}: {e}",
              file=sys.stderr)
        return []
    regressions = []
    for label, old in baseline.items():
        new = speedups.get(label)
        if new is None or old <= 0:
            continue
        drop = 1.0 - new / old
        if drop > threshold:
            regressions.append((label, old, new, drop))
            print(f"warning: REGRESSION {label}: {old:.2f}x -> {new:.2f}x "
                  f"({drop:.0%} drop vs. baseline)", file=sys.stderr)
    return regressions


def bytes_per_edge_summary(merged):
    """Derives the bytes-per-edge reduction from the variant counters."""
    counters = {}
    for entry in merged["benchmarks"]:
        if "bytes_per_edge" in entry:
            counters[entry["name"]] = entry["bytes_per_edge"]
    plain = counters.get("BM_SweepScalarF64Plain")
    packed = counters.get("BM_SweepScalarF32Compressed")
    if not plain or packed is None:
        return None
    return {
        "plain_f64": plain,
        "compressed_f32": packed,
        "reduction": 1.0 - packed / plain,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", required=True,
                        help="directory holding the built bench binaries")
    parser.add_argument("--out", required=True,
                        help="path of the merged JSON report")
    parser.add_argument("--suite", default="solver", choices=sorted(SUITES),
                        help="which benchmark suite to run (default: solver)")
    parser.add_argument("--min-time", default=None,
                        help="forwarded as --benchmark_min_time in seconds (e.g. 0.1)")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_*.json to compare ratios "
                             "against; drops >10%% print a warning")
    parser.add_argument("--allow-non-release", action="store_true",
                        help="downgrade the non-release refusal to a "
                             "warning (output is stamped non_release_build)")
    args = parser.parse_args()
    suite = SUITES[args.suite]

    merged = {"context": None, "benchmarks": [], "speedups": {}}
    times = {}
    non_release = []
    for name in suite["binaries"]:
        binary = os.path.join(args.bench_dir, name)
        if not os.path.exists(binary):
            print(f"error: {binary} not built", file=sys.stderr)
            return 1
        report = run_bench(binary, args.min_time)
        build_type = report_build_type(report, name)
        if build_type != "release":
            non_release.append((name, build_type))
        if merged["context"] is None:
            merged["context"] = report.get("context")
        for entry in report.get("benchmarks", []):
            entry["binary"] = name
            merged["benchmarks"].append(entry)
            times[entry["name"]] = real_time_ms(entry)

    if non_release:
        detail = ", ".join(f"{n} ({t})" for n, t in non_release)
        if args.allow_non_release:
            print(f"warning: NON-RELEASE BENCH RUN: {detail} — numbers are "
                  "not comparable to committed results", file=sys.stderr)
            merged["non_release_build"] = True
        else:
            print(f"error: refusing to publish non-release bench run: "
                  f"{detail}\nRebuild with -DCMAKE_BUILD_TYPE=Release or "
                  "pass --allow-non-release to record anyway.",
                  file=sys.stderr)
            return 1

    for label, baseline, optimized in suite["ratios"]:
        if baseline in times and optimized in times and times[optimized] > 0:
            merged["speedups"][label] = times[baseline] / times[optimized]

    if args.suite == "solver":
        summary = bytes_per_edge_summary(merged)
        if summary is not None:
            merged["bytes_per_edge"] = summary

    if args.suite == "obs":
        for label, ratio in merged["speedups"].items():
            if (label.startswith(OBS_BUDGETED_PREFIXES)
                    and ratio > OBS_OVERHEAD_BUDGET):
                print(f"warning: BUDGET {label}: {ratio:.3f}x exceeds the "
                      f"{OBS_OVERHEAD_BUDGET}x always-on overhead budget",
                      file=sys.stderr)

    if args.baseline:
        check_regressions(merged["speedups"], args.baseline)

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    for label, ratio in merged["speedups"].items():
        print(f"  {label}: {ratio:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
