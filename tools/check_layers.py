#!/usr/bin/env python3
"""Layer-DAG checker for the spammass tree.

The architecture is a declared DAG of layers, not a convention:

    util < obs < graph < pagerank < core < synth < pipeline < eval

Each src/<layer>/ may #include only itself and the layers its config entry
names (see LAYER_CONFIG below; the listed order is the linearization of the
declared edges). tools/, bench/, tests/, and examples/ are drivers and may
include any layer. The one sanctioned inversion is util -> obs at runtime:
util::ThreadPool exposes a ThreadPoolHooks function table and obs installs
its instrumentation through it, so observability wraps the thread pool
without util ever including an obs header. That back-edge is declared in
the config (and drawn dashed in the DOT output) precisely so that adding a
literal `#include "obs/..."` to util stays an error.

The checker scans every #include edge in the tree, fails on undeclared
cross-layer edges, unknown layers, and cycles in the declared graph itself,
and can emit a Graphviz diagram of the declared DAG:

    python3 tools/check_layers.py --root .
    python3 tools/check_layers.py --root . --dot docs/layer_dag.dot

Violations print as file:line: [layer-dag] message. Exit status 0 when
clean, 1 on violations, 2 on usage/config errors.

A JSON file with the same shape as LAYER_CONFIG can be supplied via
--config; the tool tests use this to feed intentionally-broken layerings
(e.g. a cyclic declaration) through the checker.
"""

import argparse
import json
import os
import re
import sys

# Directories that are scanned for include edges.
SOURCE_EXTS = (".h", ".cc", ".cpp")
# Intentionally-broken lint/layer fixtures must not fail the real tree.
SKIP_DIRS = {"analysis_fixtures"}

LAYER_CONFIG = {
    # Layer -> layers it may #include (itself is always allowed). obs sits
    # directly above util and below everything else: any layer may
    # instrument itself with metrics/trace spans, while obs itself may
    # reach only util.
    #
    # Units worth calling out because their placement is a decision, not
    # an accident (the checker enforces both):
    #   * graph/shard — the host-range partitioner lives in graph, NOT
    #     pagerank, so it must not include pagerank headers. The sweep's
    #     reduction-chunk alignment is passed in as a plain integer
    #     parameter; the sweep loop that consumes the plan sits one layer
    #     up in pagerank/shard_sweep.
    #   * util/mmap_file — the mmap wrapper is plain util; graph/graph_io
    #     builds the zero-copy v2.2 loader on top of it.
    "layers": {
        "util": [],
        "obs": ["util"],
        "graph": ["obs", "util"],
        "pagerank": ["graph", "obs", "util"],
        "core": ["pagerank", "graph", "obs", "util"],
        "synth": ["core", "graph", "obs", "util"],
        "pipeline": ["synth", "core", "pagerank", "graph", "obs", "util"],
        "eval": ["pipeline", "synth", "core", "pagerank", "graph", "obs",
                 "util"],
    },
    # Driver directories: may include every layer (and each other's
    # sibling headers, e.g. bench_common.h), but nothing may include them.
    "top_dirs": ["tools", "bench", "tests", "examples"],
    # Sanctioned inversions that exist at runtime but MUST NOT exist as
    # include edges: [from, to, justification]. Documentation + DOT only.
    "back_edges": [
        ["util", "obs",
         "ThreadPoolHooks function table: obs installs task callbacks into "
         "util::ThreadPool at runtime; no include edge"],
    ],
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def load_config(path):
    if path is None:
        return LAYER_CONFIG
    with open(path, encoding="utf-8") as f:
        config = json.load(f)
    for key in ("layers", "top_dirs"):
        if key not in config:
            raise ValueError(f"config missing required key '{key}'")
    config.setdefault("back_edges", [])
    return config


def validate_config(config):
    """Returns a list of config-level errors (unknown deps, cycles)."""
    errors = []
    layers = config["layers"]
    for layer, deps in layers.items():
        for dep in deps:
            if dep not in layers:
                errors.append(
                    f"config: layer '{layer}' allows unknown layer '{dep}'")
    # Cycle detection over the declared edges (iterative DFS, 3-color).
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {layer: WHITE for layer in layers}

    def visit(start):
        stack = [(start, iter(layers.get(start, ())))]
        color[start] = GRAY
        path = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for dep in it:
                if dep not in color:
                    continue  # reported above as unknown
                if color[dep] == GRAY:
                    cycle = path[path.index(dep):] + [dep]
                    errors.append(
                        "config: declared layer graph has a cycle: "
                        + " -> ".join(cycle))
                    continue
                if color[dep] == WHITE:
                    color[dep] = GRAY
                    stack.append((dep, iter(layers.get(dep, ()))))
                    path.append(dep)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()

    for layer in sorted(layers):
        if color[layer] == WHITE:
            visit(layer)
    return errors


def collect_files(root, config):
    """Yields (relpath, layer) where layer is a src layer name or None for
    driver directories."""
    files = []
    tops = [("src", True)] + [(d, False) for d in config["top_dirs"]]
    for top, is_src in tops:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, dirnames, filenames in os.walk(top_path):
            dirnames[:] = [d for d in dirnames
                           if not d.startswith(".") and d not in SKIP_DIRS]
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                rel = rel.replace(os.sep, "/")
                if is_src:
                    parts = rel.split("/")
                    layer = parts[1] if len(parts) > 2 else None
                    files.append((rel, layer))
                else:
                    files.append((rel, None))
    return sorted(files)


def include_target_layer(root, target, config):
    """Maps an include target like "pagerank/solver.h" to its layer name,
    or None when it is not a project src header (same-directory sibling
    headers and system headers resolve to None)."""
    first = target.split("/", 1)[0]
    if first in config["layers"] and os.path.exists(
            os.path.join(root, "src", target)):
        return first
    return None


def check_tree(root, config):
    violations = []
    layers = config["layers"]
    for relpath, layer in collect_files(root, config):
        in_src = relpath.startswith("src/")
        if in_src and layer is None:
            violations.append((relpath, 1,
                               "file sits directly under src/ outside every "
                               "declared layer"))
            continue
        if in_src and layer not in layers:
            violations.append((relpath, 1,
                               f"directory src/{layer}/ is not a declared "
                               "layer; add it to the layer config with its "
                               "allowed dependencies"))
            continue
        allowed = set(layers.get(layer, ())) | {layer} if in_src else None
        try:
            with open(os.path.join(root, relpath), encoding="utf-8") as f:
                lines = f.read().splitlines()
        except (OSError, UnicodeDecodeError) as e:
            violations.append((relpath, 0, f"unreadable: {e}"))
            continue
        for i, line in enumerate(lines, start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target_layer = include_target_layer(root, m.group(1), config)
            if target_layer is None:
                continue  # sibling header or non-project include
            if in_src and target_layer not in allowed:
                violations.append(
                    (relpath, i,
                     f"layer '{layer}' must not include layer "
                     f"'{target_layer}' (\"{m.group(1)}\"); declared deps "
                     f"of '{layer}': "
                     f"{sorted(layers.get(layer, ())) or 'none'}"))
    return violations


def emit_dot(config, path):
    layers = config["layers"]
    # Rank layers bottom-up by dependency count so the diagram reads as a
    # stack; Graphviz handles actual placement.
    lines = [
        "// Generated by tools/check_layers.py --dot; do not edit by hand.",
        "digraph spammass_layers {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica", style=filled,'
        ' fillcolor="#eef2f7"];',
        '  edge [fontname="Helvetica", fontsize=10];',
    ]
    for layer in sorted(layers):
        lines.append(f'  "{layer}";')
    drivers = ", ".join(config["top_dirs"])
    lines.append(f'  "drivers\\n({drivers})" [fillcolor="#f7f3e8"];')
    for layer in sorted(layers):
        for dep in sorted(layers[layer]):
            lines.append(f'  "{layer}" -> "{dep}";')
        lines.append(f'  "drivers\\n({drivers})" -> "{layer}"'
                     " [color=gray, arrowsize=0.6];")
    for frm, to, why in config.get("back_edges", []):
        lines.append(f'  "{frm}" -> "{to}" [style=dashed, color="#b0413e",'
                     f' label="runtime hooks", tooltip="{why}"];')
    lines.append("}")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("--config", default=None,
                        help="JSON layer config overriding the built-in DAG")
    parser.add_argument("--dot", default=None, metavar="PATH",
                        help="also write a Graphviz diagram of the declared "
                             "DAG (e.g. docs/layer_dag.dot)")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"check_layers: no such directory: {root}", file=sys.stderr)
        return 2
    try:
        config = load_config(args.config)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_layers: bad config: {e}", file=sys.stderr)
        return 2

    config_errors = validate_config(config)
    if config_errors:
        for error in config_errors:
            print(error)
        print(f"check_layers: {len(config_errors)} config error(s)",
              file=sys.stderr)
        return 2

    violations = check_tree(root, config)
    for relpath, line_no, message in violations:
        print(f"{relpath}:{line_no}: [layer-dag] {message}")

    if args.dot:
        emit_dot(config, os.path.join(root, args.dot)
                 if not os.path.isabs(args.dot) else args.dot)

    if violations:
        print(f"check_layers: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"check_layers: {len(config['layers'])} layers, include edges "
          "clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
