#!/usr/bin/env python3
"""Repo-convention linter for the spammass tree.

Rules (each printed as file:line: [rule] message):

  include-guard   Headers carry #ifndef/#define/#endif guards named after
                  their path: src/graph/web_graph.h -> SPAMMASS_GRAPH_
                  WEB_GRAPH_H_ (bench/foo.h -> SPAMMASS_BENCH_FOO_H_, etc.).
  banned-function rand/srand/atoi are forbidden everywhere (seedable
                  determinism and error-checked parsing matter for
                  reproducibility); std::random_device only inside
                  src/util/random.* so every other random draw goes through
                  the seeded util::Rng.
  using-namespace `using namespace std` is forbidden everywhere; any other
                  `using namespace` is forbidden in headers.
  include-hygiene Project includes use quotes with the full path from src/
                  (never <> for project headers); a .cc/.cpp file includes
                  its own header first; no duplicate includes in one file.
  pipeline-orchestration
                  examples/ and tools/ must obtain graphs and solver
                  artifacts through the pipeline layer (GraphSource,
                  PipelineContext, RunDetectors) instead of calling
                  pagerank::Compute*, core::EstimateSpamMass /
                  ComputeTrustRank or graph::Read* directly — the pipeline
                  is the single orchestration path, so every entry point
                  gets format sniffing, the artifact cache and run
                  manifests for free. bench/ is deliberately out of scope:
                  perf benches measure the raw kernels against the fused
                  path, which requires calling both directly.
  telemetry-timing
                  src/pipeline/ and tools/ must not use raw util::WallTimer;
                  time stages with obs::ScopedStageTimer (or a trace span)
                  so every measured interval lands in both the stage-timing
                  manifest and the trace output. bench/ is exempt:
                  google-benchmark owns its timing, and benches measure the
                  telemetry layer itself.
  wall-clock      Determinism: wall-clock sources (std::chrono::system_clock,
                  high_resolution_clock, time(), gettimeofday, localtime,
                  gmtime) are banned throughout src/ — a wall-clock value
                  that seeds an RNG or reaches an output makes solves
                  unreproducible. steady_clock (monotonic, duration-only) is
                  additionally restricted to the timing layers
                  (src/util/timer.h, src/obs/) so durations flow through
                  WallTimer / trace spans rather than ad-hoc clock reads.
  simd-isolation  Vector intrinsics (immintrin/arm_neon includes, _mm*/
                  __m256*/v*q_f32-style identifiers) are confined to
                  src/pagerank/simd* translation units: every consumer goes
                  through the runtime-dispatched shim (pagerank/simd.h), so
                  a build for a host without the instruction set only loses
                  the fast path, never correctness. As a post-pass, when a
                  vector backend TU (src/pagerank/simd_*.cc) is linted, the
                  dispatch shim src/pagerank/simd.cc must still reference
                  the portable ScalarSweepRange fallback — deleting the
                  scalar path while keeping the intrinsics is the one
                  refactor this rule exists to stop.
  resource-isolation
                  Kernel introspection (/proc/self paths, perf_event_open,
                  mincore) is confined to src/obs/ and src/util/mmap_file.cc
                  so every probe degrades gracefully in exactly one place:
                  a host without the facility reports absent metrics, never
                  zeros, and no solver or pipeline code grows a platform
                  #ifdef. Consumers read the published registry metrics
                  (process.*, graph.mmap_*) instead of re-probing. Matched
                  against comment-stripped lines WITH string literals kept,
                  since "/proc/self/..." lives inside a string.
  unordered-iteration
                  Determinism: iterating a std::unordered_{map,set,...} in
                  src/graph/, src/pagerank/, or src/pipeline/ is banned —
                  bucket order is implementation- and size-dependent, so any
                  iteration that feeds ordered output (node tables, CSR
                  emission, manifests) silently breaks the bit-identical
                  guarantee. Point lookups are fine; to traverse, copy keys
                  out and sort, or use an ordered container. Allowlist
                  entries (EXEMPT below) require a justification comment
                  proving the iteration order cannot reach any output.

Exit status 0 when clean, 1 when violations were found, 2 on usage errors.
Run locally:  python3 tools/spammass_lint.py --root .
"""

import argparse
import os
import re
import sys

SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
SOURCE_EXTS = (".h", ".cc", ".cpp")
# Intentionally-broken fixture snippets for the analysis-tool tests live
# under tests/analysis_fixtures/; they must not fail the real-tree lint.
SKIP_DIRS = {"analysis_fixtures"}

# rand( / srand( / atoi( as whole identifiers, allowing std:: / :: prefixes.
BANNED_CALL_RE = re.compile(r"(?<![\w:.])(?:std::|::)?(rand|srand|atoi)\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\bstd::random_device\b")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+([\w:]+)")
# Direct solver/loader orchestration that examples/ and tools/ must route
# through the pipeline layer instead.
ORCHESTRATION_RE = re.compile(
    r"\b(pagerank::(?:ComputeUniformPageRank|ComputePageRankMulti|"
    r"ComputePageRank)|"
    r"core::(?:EstimateSpamMass|ComputeTrustRank|RunTrustRank)|"
    r"graph::(?:ReadEdgeListText|ReadBinary))\s*\(")
# Directories the pipeline-orchestration rule applies to (bench/ is
# excluded: perf benches compare raw kernels against the fused path).
ORCHESTRATION_DIRS = ("examples/", "tools/")
# Raw wall timers in orchestration code bypass the stage-timing manifest
# and the trace; obs::ScopedStageTimer feeds both.
WALL_TIMER_RE = re.compile(r"\b(?:util::)?WallTimer\b")
# Directories the telemetry-timing rule applies to (bench/ is excluded:
# google-benchmark owns bench timing, and bench_obs measures telemetry).
TIMING_DIRS = ("src/pipeline/", "tools/")
# Wall-clock sources: values change run to run, so any one of them feeding
# a seed or an output breaks reproducibility. time( is matched as a whole
# identifier so RunTime(/WallTime( etc. stay clean.
WALL_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system_clock|high_resolution_clock)\b|"
    r"\b(?:gettimeofday|localtime|localtime_r|gmtime|gmtime_r)\s*\(|"
    r"(?<![\w:.])(?:std::|::)?time\s*\(")
# steady_clock is monotonic (safe for durations, useless as data) but still
# confined to the timing layers (EXEMPT entries below) so every measured
# interval flows through util::WallTimer or an obs span.
STEADY_CLOCK_RE = re.compile(r"\bstd::chrono::steady_clock\b")
# Vector intrinsics: x86 SSE/AVX and ARM NEON headers, register types and
# intrinsic calls. Confined to src/pagerank/simd* so everything else stays
# portable and the scalar fallback can never be compiled out by accident.
INTRINSICS_RE = re.compile(
    r"#\s*include\s*<\w*intrin\.h>|"
    r"#\s*include\s*<arm_neon\.h>|"
    r"\b_mm(?:256|512)?_\w+\s*\(|\b__m(?:128|256|512)[di]?\b|"
    r"\b(?:vld1|vst1|vdup|vadd|vsub|vmul|vfma|vcvt|vget|vset)q?_\w+\s*\(|"
    r"\bfloat(?:32|64)x\d+(?:x\d+)?_t\b")
# The only files allowed to spell intrinsics.
SIMD_ALLOWED_PREFIX = "src/pagerank/simd"
# Kernel-introspection probes: /proc paths (string literals), the
# perf_event_open syscall wrapper, and the mincore residency query. The
# sanctioned homes keep the graceful-degradation logic in one place.
RESOURCE_ISOLATION_RE = re.compile(
    r"/proc/self|\bperf_event_open\b|\bmincore\s*\(")
RESOURCE_ALLOWED_PREFIXES = ("src/obs/", "src/util/mmap_file.cc")
# Determinism-critical directories: anything iterating a hash container
# here can leak bucket order into ordered output (CSR arrays, manifests).
UNORDERED_DIRS = ("src/graph/", "src/pagerank/", "src/pipeline/")
# Declaration of an unordered container variable, member, or (possibly
# ref/pointer) parameter; [^;{}] keeps the match inside one declarator even
# when template args span lines.
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"(?:[&*\s]|const\b)*(\w+)\s*[;,)({=]", re.DOTALL)
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
GUARD_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)")

# Allowed exceptions: file path (relative, slash-normalized) -> set of rules
# that are suppressed for it. Keep this list short and justified.
EXEMPT = {
    # The seeded RNG wrapper is the one legitimate random_device user.
    "src/util/random.h": {"banned-random-device"},
    "src/util/random.cc": {"banned-random-device"},
    # The linter itself spells the banned tokens in strings.
    "tools/spammass_lint.py": {"banned-function", "banned-random-device"},
    # WallTimer IS the timing layer: steady_clock reads are its entire job,
    # and the measured durations feed benchmarks/telemetry, never solves.
    "src/util/timer.h": {"wall-clock"},
    # TraceNowNs() is the trace layer's monotonic timestamp source; span
    # timestamps are telemetry output by definition, not solver input.
    "src/obs/trace.cc": {"wall-clock"},
}


def is_exempt(relpath, rule):
    return rule in EXEMPT.get(relpath, set())


def expected_guard(relpath):
    """SPAMMASS_<PATH>_H_ with the leading src/ stripped."""
    path = relpath
    if path.startswith("src/"):
        path = path[len("src/"):]
    token = re.sub(r"[^A-Za-z0-9]", "_", path)
    return "SPAMMASS_" + token.upper() + "_"


def strip_comments_and_strings(line, in_block_comment, keep_strings=False):
    """Removes // and /* */ comments and string/char literal contents so the
    content rules don't fire on prose. Returns (code, still_in_block).
    With keep_strings=True the literal contents survive (only comments are
    removed) — the resource-isolation rule matches "/proc/self/..." paths,
    which live inside strings."""
    out = []
    i = 0
    n = len(line)
    in_string = None
    while i < n:
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if in_block_comment:
            if ch == "*" and nxt == "/":
                in_block_comment = False
                i += 2
                continue
            i += 1
            continue
        if in_string:
            if ch == "\\":
                if keep_strings:
                    out.append(line[i:i + 2])
                i += 2
                continue
            if ch == in_string:
                in_string = None
            if keep_strings:
                out.append(ch)
            i += 1
            continue
        if ch == "/" and nxt == "/":
            break
        if ch == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        if ch in "\"'":
            in_string = ch
            out.append(ch)  # keep the quote as a boundary token
            i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


class Linter:
    def __init__(self, root):
        self.root = root
        self.violations = []

    def report(self, relpath, line_no, rule, message):
        self.violations.append((relpath, line_no, rule, message))

    def lint_file(self, relpath):
        path = os.path.join(self.root, relpath)
        try:
            with open(path, encoding="utf-8") as f:
                raw_lines = f.read().splitlines()
        except (OSError, UnicodeDecodeError) as e:
            self.report(relpath, 0, "io", f"unreadable: {e}")
            return

        is_header = relpath.endswith(".h")
        code_lines = []
        literal_lines = []  # comments stripped, string contents kept
        in_block = False
        in_block_lit = False
        for line in raw_lines:
            code, in_block = strip_comments_and_strings(line, in_block)
            code_lines.append(code)
            lit, in_block_lit = strip_comments_and_strings(
                line, in_block_lit, keep_strings=True)
            literal_lines.append(lit)

        self.check_content_rules(relpath, code_lines, is_header)
        self.check_resource_isolation(relpath, literal_lines)
        if relpath.startswith(UNORDERED_DIRS):
            self.check_unordered_iteration(relpath, code_lines)
        # Includes are parsed from the raw lines: the comment/string
        # stripper above removes quoted include targets.
        self.check_includes(relpath, raw_lines)
        if is_header:
            self.check_include_guard(relpath, code_lines, raw_lines)

    def check_content_rules(self, relpath, code_lines, is_header):
        for i, code in enumerate(code_lines, start=1):
            m = BANNED_CALL_RE.search(code)
            if m and not is_exempt(relpath, "banned-function"):
                self.report(
                    relpath, i, "banned-function",
                    f"{m.group(1)}() is banned: use util/random.h for "
                    "randomness and util/string_util.h (or std::from_chars) "
                    "for parsing")
            if RANDOM_DEVICE_RE.search(code) and not is_exempt(
                    relpath, "banned-random-device"):
                self.report(
                    relpath, i, "banned-function",
                    "std::random_device outside src/util/random is banned: "
                    "draw through the seeded util::Rng so runs stay "
                    "reproducible")
            if not relpath.startswith(SIMD_ALLOWED_PREFIX) and not is_exempt(
                    relpath, "simd-isolation"):
                if INTRINSICS_RE.search(code):
                    self.report(
                        relpath, i, "simd-isolation",
                        "vector intrinsics outside src/pagerank/simd*; call "
                        "through the runtime-dispatched shim (pagerank/"
                        "simd.h) so hosts without the instruction set keep "
                        "the scalar path")
            if relpath.startswith(ORCHESTRATION_DIRS) and not is_exempt(
                    relpath, "pipeline-orchestration"):
                m = ORCHESTRATION_RE.search(code)
                if m:
                    self.report(
                        relpath, i, "pipeline-orchestration",
                        f"{m.group(1)}() called directly; examples/ and "
                        "tools/ load graphs via pipeline::GraphSource and "
                        "compute artifacts via pipeline::PipelineContext / "
                        "RunDetectors so they share the sniffing, cache and "
                        "manifest path")
            if relpath.startswith(TIMING_DIRS) and not is_exempt(
                    relpath, "telemetry-timing"):
                if WALL_TIMER_RE.search(code):
                    self.report(
                        relpath, i, "telemetry-timing",
                        "raw util::WallTimer bypasses telemetry; time "
                        "stages with obs::ScopedStageTimer (obs/"
                        "stage_timer.h) so the interval reaches both the "
                        "stage-timing manifest and the trace")
            if relpath.startswith("src/") and not is_exempt(
                    relpath, "wall-clock"):
                if WALL_CLOCK_RE.search(code):
                    self.report(
                        relpath, i, "wall-clock",
                        "wall-clock source in src/: run-to-run timestamps "
                        "must never seed RNGs or reach outputs; seed "
                        "util::Rng explicitly and time stages via "
                        "obs::ScopedStageTimer")
                elif STEADY_CLOCK_RE.search(code):
                    self.report(
                        relpath, i, "wall-clock",
                        "steady_clock outside the timing layers; measure "
                        "durations through util::WallTimer or an obs trace "
                        "span (EXEMPT requires a justification that the "
                        "value cannot reach any output)")
            m = USING_NAMESPACE_RE.match(code)
            if m:
                ns = m.group(1)
                if ns == "std" or ns.startswith("std::"):
                    self.report(
                        relpath, i, "using-namespace",
                        "`using namespace std` is banned (spell out std::)")
                elif is_header:
                    self.report(
                        relpath, i, "using-namespace",
                        f"`using namespace {ns}` in a header leaks into "
                        "every includer; move it into a .cc or drop it")

    def check_resource_isolation(self, relpath, literal_lines):
        """Confines kernel introspection to the observability units. Matched
        against comment-stripped lines with string literals kept: the /proc
        paths are strings, and prose mentions in comments must not fire."""
        if not relpath.startswith("src/"):
            return
        if relpath.startswith(RESOURCE_ALLOWED_PREFIXES):
            return
        if is_exempt(relpath, "resource-isolation"):
            return
        for i, code in enumerate(literal_lines, start=1):
            m = RESOURCE_ISOLATION_RE.search(code)
            if m:
                self.report(
                    relpath, i, "resource-isolation",
                    f"kernel introspection ({m.group(0).strip()}) outside "
                    "src/obs/ and src/util/mmap_file.cc; sample through "
                    "obs/resource.h, obs/perf_counters.h or the MmapFile "
                    "residency probes so availability fallbacks stay in "
                    "one place and metrics stay absent-not-zero")

    def check_unordered_iteration(self, relpath, code_lines):
        """Flags iteration over unordered containers in determinism-critical
        directories. Declarations are collected over the whole (stripped)
        file so a range-for can be matched against names declared anywhere
        in it; point lookups (find/count/operator[]/emplace) never match."""
        if is_exempt(relpath, "unordered-iteration"):
            return
        names = set(UNORDERED_DECL_RE.findall("\n".join(code_lines)))
        if not names:
            return
        alt = "|".join(sorted(re.escape(n) for n in names))
        range_for_re = re.compile(
            r"\bfor\s*\([^;()]*:\s*(?:\w+(?:\.|->))?(" + alt + r")\s*\)")
        begin_re = re.compile(
            r"\b(" + alt + r")\s*(?:\.|->)\s*(?:c?r?begin|c?r?end)\s*\(")
        for i, code in enumerate(code_lines, start=1):
            m = range_for_re.search(code) or begin_re.search(code)
            if m:
                self.report(
                    relpath, i, "unordered-iteration",
                    f"iterating unordered container '{m.group(1)}' leaks "
                    "bucket order into this determinism-critical layer; "
                    "copy keys out and sort, or switch to an ordered "
                    "container (EXEMPT requires a justification that the "
                    "order cannot reach any output)")

    def check_includes(self, relpath, raw_lines):
        seen = {}
        first_include = None
        for i, code in enumerate(raw_lines, start=1):
            m = INCLUDE_RE.match(code)
            if not m:
                continue
            style, target = m.groups()
            if first_include is None:
                first_include = (i, style, target)
            if target in seen:
                self.report(
                    relpath, i, "include-hygiene",
                    f'duplicate #include "{target}" (first at line '
                    f"{seen[target]})")
            else:
                seen[target] = i
            is_project = os.path.exists(
                os.path.join(self.root, "src", target)) or os.path.exists(
                    os.path.join(self.root, os.path.dirname(relpath), target))
            if style == "<" and os.path.exists(
                    os.path.join(self.root, "src", target)):
                self.report(
                    relpath, i, "include-hygiene",
                    f"project header <{target}> must use quotes")
            if style == '"' and not is_project:
                self.report(
                    relpath, i, "include-hygiene",
                    f'"{target}" does not resolve against src/ or the '
                    "including directory; use the full path from src/ for "
                    "project headers (or <> for system headers)")

        # A .cc/.cpp implementing src/<pkg>/<name>.h includes it first so the
        # header is verified self-contained.
        if relpath.endswith((".cc", ".cpp")) and relpath.startswith("src/"):
            own = os.path.splitext(relpath[len("src/"):])[0] + ".h"
            if os.path.exists(os.path.join(self.root, "src", own)):
                if first_include is None or first_include[2] != own:
                    got = first_include[2] if first_include else "nothing"
                    self.report(
                        relpath, first_include[0] if first_include else 1,
                        "include-hygiene",
                        f'own header "{own}" must be the first include '
                        f"(found {got})")

    def check_include_guard(self, relpath, code_lines, raw_lines):
        want = expected_guard(relpath)
        ifndef = None
        for i, code in enumerate(code_lines, start=1):
            m = GUARD_IFNDEF_RE.match(code)
            if m:
                ifndef = (i, m.group(1))
                break
        if ifndef is None:
            self.report(relpath, 1, "include-guard",
                        f"missing include guard (expected {want})")
            return
        line_no, name = ifndef
        if name != want:
            self.report(relpath, line_no, "include-guard",
                        f"guard {name} should be {want}")
            return
        define_ok = any(
            GUARD_DEFINE_RE.match(code) and
            GUARD_DEFINE_RE.match(code).group(1) == want
            for code in code_lines[line_no - 1:line_no + 2])
        if not define_ok:
            self.report(relpath, line_no, "include-guard",
                        f"#define {want} must directly follow the #ifndef")
        # The closing #endif conventionally carries the guard name.
        for line in reversed(raw_lines):
            if line.strip():
                if line.strip().startswith("#endif") and want not in line:
                    self.report(
                        relpath, len(raw_lines), "include-guard",
                        f"closing #endif should carry the comment "
                        f"// {want}")
                break


def check_simd_fallback(root, files, linter):
    """Post-pass of the simd-isolation rule: whenever a vector backend TU
    (src/pagerank/simd_*.cc) is part of the lint set, the dispatch shim
    src/pagerank/simd.cc must still reference the portable
    ScalarSweepRange fallback — otherwise a host without the instruction
    set has no sweep at all."""
    if not any(f.startswith("src/pagerank/simd_") and f.endswith(".cc")
               for f in files):
        return
    shim = "src/pagerank/simd.cc"
    try:
        with open(os.path.join(root, shim), encoding="utf-8") as f:
            content = f.read()
    except OSError:
        linter.report(shim, 1, "simd-isolation",
                      "vector backend TUs exist but the dispatch shim "
                      "src/pagerank/simd.cc is missing")
        return
    if "ScalarSweepRange" not in content:
        linter.report(shim, 1, "simd-isolation",
                      "dispatch shim no longer references the portable "
                      "ScalarSweepRange fallback; every (level, k, "
                      "encoding) combination must resolve to a valid sweep "
                      "on hosts without vector support")


def collect_files(root):
    files = []
    for top in SOURCE_DIRS:
        top_path = os.path.join(root, top)
        if not os.path.isdir(top_path):
            continue
        for dirpath, dirnames, filenames in os.walk(top_path):
            dirnames[:] = [d for d in dirnames
                           if not d.startswith(".") and d not in SKIP_DIRS]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(rel.replace(os.sep, "/"))
    return sorted(files)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repo root (default: cwd)")
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (default: whole tree)")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"spammass_lint: no such directory: {root}", file=sys.stderr)
        return 2

    files = [f.replace(os.sep, "/") for f in args.files] or collect_files(root)
    linter = Linter(root)
    for relpath in files:
        linter.lint_file(relpath)
    check_simd_fallback(root, files, linter)

    for relpath, line_no, rule, message in linter.violations:
        print(f"{relpath}:{line_no}: [{rule}] {message}")
    if linter.violations:
        print(f"spammass_lint: {len(linter.violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"spammass_lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
