file(REMOVE_RECURSE
  "CMakeFiles/spammass_cli.dir/spammass_cli.cc.o"
  "CMakeFiles/spammass_cli.dir/spammass_cli.cc.o.d"
  "spammass_cli"
  "spammass_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spammass_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
