# Empty compiler generated dependencies file for spammass_cli.
# This may be replaced when dependencies are built.
