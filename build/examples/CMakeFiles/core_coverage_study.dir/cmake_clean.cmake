file(REMOVE_RECURSE
  "CMakeFiles/core_coverage_study.dir/core_coverage_study.cpp.o"
  "CMakeFiles/core_coverage_study.dir/core_coverage_study.cpp.o.d"
  "core_coverage_study"
  "core_coverage_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_coverage_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
