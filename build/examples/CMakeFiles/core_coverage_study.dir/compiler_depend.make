# Empty compiler generated dependencies file for core_coverage_study.
# This may be replaced when dependencies are built.
