file(REMOVE_RECURSE
  "CMakeFiles/incremental_deployment.dir/incremental_deployment.cpp.o"
  "CMakeFiles/incremental_deployment.dir/incremental_deployment.cpp.o.d"
  "incremental_deployment"
  "incremental_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
