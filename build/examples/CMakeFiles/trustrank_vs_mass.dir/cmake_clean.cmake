file(REMOVE_RECURSE
  "CMakeFiles/trustrank_vs_mass.dir/trustrank_vs_mass.cpp.o"
  "CMakeFiles/trustrank_vs_mass.dir/trustrank_vs_mass.cpp.o.d"
  "trustrank_vs_mass"
  "trustrank_vs_mass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trustrank_vs_mass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
