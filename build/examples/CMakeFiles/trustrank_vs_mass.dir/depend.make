# Empty dependencies file for trustrank_vs_mass.
# This may be replaced when dependencies are built.
