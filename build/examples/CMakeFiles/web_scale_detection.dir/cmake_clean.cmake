file(REMOVE_RECURSE
  "CMakeFiles/web_scale_detection.dir/web_scale_detection.cpp.o"
  "CMakeFiles/web_scale_detection.dir/web_scale_detection.cpp.o.d"
  "web_scale_detection"
  "web_scale_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_scale_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
