# Empty dependencies file for web_scale_detection.
# This may be replaced when dependencies are built.
