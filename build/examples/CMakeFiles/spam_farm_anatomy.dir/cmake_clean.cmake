file(REMOVE_RECURSE
  "CMakeFiles/spam_farm_anatomy.dir/spam_farm_anatomy.cpp.o"
  "CMakeFiles/spam_farm_anatomy.dir/spam_farm_anatomy.cpp.o.d"
  "spam_farm_anatomy"
  "spam_farm_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_farm_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
