# Empty compiler generated dependencies file for spam_farm_anatomy.
# This may be replaced when dependencies are built.
