# Empty dependencies file for spammass_tests.
# This may be replaced when dependencies are built.
