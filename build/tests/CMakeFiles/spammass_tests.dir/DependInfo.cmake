
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cli_integration_test.cc" "tests/CMakeFiles/spammass_tests.dir/cli_integration_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/cli_integration_test.cc.o.d"
  "/root/repo/tests/core_bootstrap_test.cc" "tests/CMakeFiles/spammass_tests.dir/core_bootstrap_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/core_bootstrap_test.cc.o.d"
  "/root/repo/tests/core_degree_outlier_test.cc" "tests/CMakeFiles/spammass_tests.dir/core_degree_outlier_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/core_degree_outlier_test.cc.o.d"
  "/root/repo/tests/core_detector_test.cc" "tests/CMakeFiles/spammass_tests.dir/core_detector_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/core_detector_test.cc.o.d"
  "/root/repo/tests/core_good_core_test.cc" "tests/CMakeFiles/spammass_tests.dir/core_good_core_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/core_good_core_test.cc.o.d"
  "/root/repo/tests/core_label_io_test.cc" "tests/CMakeFiles/spammass_tests.dir/core_label_io_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/core_label_io_test.cc.o.d"
  "/root/repo/tests/core_labels_test.cc" "tests/CMakeFiles/spammass_tests.dir/core_labels_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/core_labels_test.cc.o.d"
  "/root/repo/tests/core_mass_properties_test.cc" "tests/CMakeFiles/spammass_tests.dir/core_mass_properties_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/core_mass_properties_test.cc.o.d"
  "/root/repo/tests/core_naive_schemes_test.cc" "tests/CMakeFiles/spammass_tests.dir/core_naive_schemes_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/core_naive_schemes_test.cc.o.d"
  "/root/repo/tests/core_spam_mass_test.cc" "tests/CMakeFiles/spammass_tests.dir/core_spam_mass_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/core_spam_mass_test.cc.o.d"
  "/root/repo/tests/core_trustrank_test.cc" "tests/CMakeFiles/spammass_tests.dir/core_trustrank_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/core_trustrank_test.cc.o.d"
  "/root/repo/tests/eval_experiment_test.cc" "tests/CMakeFiles/spammass_tests.dir/eval_experiment_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/eval_experiment_test.cc.o.d"
  "/root/repo/tests/eval_grouping_test.cc" "tests/CMakeFiles/spammass_tests.dir/eval_grouping_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/eval_grouping_test.cc.o.d"
  "/root/repo/tests/eval_mass_distribution_test.cc" "tests/CMakeFiles/spammass_tests.dir/eval_mass_distribution_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/eval_mass_distribution_test.cc.o.d"
  "/root/repo/tests/eval_metrics_test.cc" "tests/CMakeFiles/spammass_tests.dir/eval_metrics_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/eval_metrics_test.cc.o.d"
  "/root/repo/tests/eval_precision_test.cc" "tests/CMakeFiles/spammass_tests.dir/eval_precision_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/eval_precision_test.cc.o.d"
  "/root/repo/tests/eval_sampling_test.cc" "tests/CMakeFiles/spammass_tests.dir/eval_sampling_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/eval_sampling_test.cc.o.d"
  "/root/repo/tests/graph_algorithms_test.cc" "tests/CMakeFiles/spammass_tests.dir/graph_algorithms_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/graph_algorithms_test.cc.o.d"
  "/root/repo/tests/graph_builder_test.cc" "tests/CMakeFiles/spammass_tests.dir/graph_builder_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/graph_builder_test.cc.o.d"
  "/root/repo/tests/graph_host_normalize_test.cc" "tests/CMakeFiles/spammass_tests.dir/graph_host_normalize_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/graph_host_normalize_test.cc.o.d"
  "/root/repo/tests/graph_io_test.cc" "tests/CMakeFiles/spammass_tests.dir/graph_io_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/graph_io_test.cc.o.d"
  "/root/repo/tests/graph_site_aggregation_test.cc" "tests/CMakeFiles/spammass_tests.dir/graph_site_aggregation_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/graph_site_aggregation_test.cc.o.d"
  "/root/repo/tests/graph_stats_test.cc" "tests/CMakeFiles/spammass_tests.dir/graph_stats_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/graph_stats_test.cc.o.d"
  "/root/repo/tests/graph_subgraph_test.cc" "tests/CMakeFiles/spammass_tests.dir/graph_subgraph_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/graph_subgraph_test.cc.o.d"
  "/root/repo/tests/graph_web_graph_test.cc" "tests/CMakeFiles/spammass_tests.dir/graph_web_graph_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/graph_web_graph_test.cc.o.d"
  "/root/repo/tests/integration_detection_quality_test.cc" "tests/CMakeFiles/spammass_tests.dir/integration_detection_quality_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/integration_detection_quality_test.cc.o.d"
  "/root/repo/tests/integration_pipeline_test.cc" "tests/CMakeFiles/spammass_tests.dir/integration_pipeline_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/integration_pipeline_test.cc.o.d"
  "/root/repo/tests/pagerank_contribution_test.cc" "tests/CMakeFiles/spammass_tests.dir/pagerank_contribution_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/pagerank_contribution_test.cc.o.d"
  "/root/repo/tests/pagerank_jump_vector_test.cc" "tests/CMakeFiles/spammass_tests.dir/pagerank_jump_vector_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/pagerank_jump_vector_test.cc.o.d"
  "/root/repo/tests/pagerank_neumann_test.cc" "tests/CMakeFiles/spammass_tests.dir/pagerank_neumann_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/pagerank_neumann_test.cc.o.d"
  "/root/repo/tests/pagerank_properties_test.cc" "tests/CMakeFiles/spammass_tests.dir/pagerank_properties_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/pagerank_properties_test.cc.o.d"
  "/root/repo/tests/pagerank_solver_test.cc" "tests/CMakeFiles/spammass_tests.dir/pagerank_solver_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/pagerank_solver_test.cc.o.d"
  "/root/repo/tests/pagerank_sor_test.cc" "tests/CMakeFiles/spammass_tests.dir/pagerank_sor_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/pagerank_sor_test.cc.o.d"
  "/root/repo/tests/pagerank_walk_enumeration_test.cc" "tests/CMakeFiles/spammass_tests.dir/pagerank_walk_enumeration_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/pagerank_walk_enumeration_test.cc.o.d"
  "/root/repo/tests/synth_generator_test.cc" "tests/CMakeFiles/spammass_tests.dir/synth_generator_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/synth_generator_test.cc.o.d"
  "/root/repo/tests/synth_host_name_test.cc" "tests/CMakeFiles/spammass_tests.dir/synth_host_name_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/synth_host_name_test.cc.o.d"
  "/root/repo/tests/synth_paper_graphs_test.cc" "tests/CMakeFiles/spammass_tests.dir/synth_paper_graphs_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/synth_paper_graphs_test.cc.o.d"
  "/root/repo/tests/synth_scenario_test.cc" "tests/CMakeFiles/spammass_tests.dir/synth_scenario_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/synth_scenario_test.cc.o.d"
  "/root/repo/tests/synth_spam_farm_test.cc" "tests/CMakeFiles/spammass_tests.dir/synth_spam_farm_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/synth_spam_farm_test.cc.o.d"
  "/root/repo/tests/util_flags_test.cc" "tests/CMakeFiles/spammass_tests.dir/util_flags_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/util_flags_test.cc.o.d"
  "/root/repo/tests/util_histogram_test.cc" "tests/CMakeFiles/spammass_tests.dir/util_histogram_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/util_histogram_test.cc.o.d"
  "/root/repo/tests/util_power_law_test.cc" "tests/CMakeFiles/spammass_tests.dir/util_power_law_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/util_power_law_test.cc.o.d"
  "/root/repo/tests/util_random_test.cc" "tests/CMakeFiles/spammass_tests.dir/util_random_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/util_random_test.cc.o.d"
  "/root/repo/tests/util_status_test.cc" "tests/CMakeFiles/spammass_tests.dir/util_status_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/util_status_test.cc.o.d"
  "/root/repo/tests/util_string_test.cc" "tests/CMakeFiles/spammass_tests.dir/util_string_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/util_string_test.cc.o.d"
  "/root/repo/tests/util_table_test.cc" "tests/CMakeFiles/spammass_tests.dir/util_table_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/util_table_test.cc.o.d"
  "/root/repo/tests/util_thread_pool_test.cc" "tests/CMakeFiles/spammass_tests.dir/util_thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/spammass_tests.dir/util_thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/spammass_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/spammass_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spammass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pagerank/CMakeFiles/spammass_pagerank.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/spammass_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spammass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
