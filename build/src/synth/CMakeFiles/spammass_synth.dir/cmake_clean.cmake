file(REMOVE_RECURSE
  "CMakeFiles/spammass_synth.dir/generator.cc.o"
  "CMakeFiles/spammass_synth.dir/generator.cc.o.d"
  "CMakeFiles/spammass_synth.dir/host_name_gen.cc.o"
  "CMakeFiles/spammass_synth.dir/host_name_gen.cc.o.d"
  "CMakeFiles/spammass_synth.dir/paper_graphs.cc.o"
  "CMakeFiles/spammass_synth.dir/paper_graphs.cc.o.d"
  "CMakeFiles/spammass_synth.dir/scenario.cc.o"
  "CMakeFiles/spammass_synth.dir/scenario.cc.o.d"
  "CMakeFiles/spammass_synth.dir/spam_farm.cc.o"
  "CMakeFiles/spammass_synth.dir/spam_farm.cc.o.d"
  "CMakeFiles/spammass_synth.dir/web_model.cc.o"
  "CMakeFiles/spammass_synth.dir/web_model.cc.o.d"
  "libspammass_synth.a"
  "libspammass_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spammass_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
