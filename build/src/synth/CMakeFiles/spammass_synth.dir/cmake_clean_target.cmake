file(REMOVE_RECURSE
  "libspammass_synth.a"
)
