
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/generator.cc" "src/synth/CMakeFiles/spammass_synth.dir/generator.cc.o" "gcc" "src/synth/CMakeFiles/spammass_synth.dir/generator.cc.o.d"
  "/root/repo/src/synth/host_name_gen.cc" "src/synth/CMakeFiles/spammass_synth.dir/host_name_gen.cc.o" "gcc" "src/synth/CMakeFiles/spammass_synth.dir/host_name_gen.cc.o.d"
  "/root/repo/src/synth/paper_graphs.cc" "src/synth/CMakeFiles/spammass_synth.dir/paper_graphs.cc.o" "gcc" "src/synth/CMakeFiles/spammass_synth.dir/paper_graphs.cc.o.d"
  "/root/repo/src/synth/scenario.cc" "src/synth/CMakeFiles/spammass_synth.dir/scenario.cc.o" "gcc" "src/synth/CMakeFiles/spammass_synth.dir/scenario.cc.o.d"
  "/root/repo/src/synth/spam_farm.cc" "src/synth/CMakeFiles/spammass_synth.dir/spam_farm.cc.o" "gcc" "src/synth/CMakeFiles/spammass_synth.dir/spam_farm.cc.o.d"
  "/root/repo/src/synth/web_model.cc" "src/synth/CMakeFiles/spammass_synth.dir/web_model.cc.o" "gcc" "src/synth/CMakeFiles/spammass_synth.dir/web_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spammass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/spammass_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spammass_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pagerank/CMakeFiles/spammass_pagerank.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
