# Empty compiler generated dependencies file for spammass_synth.
# This may be replaced when dependencies are built.
