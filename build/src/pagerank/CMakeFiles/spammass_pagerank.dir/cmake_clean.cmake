file(REMOVE_RECURSE
  "CMakeFiles/spammass_pagerank.dir/contribution.cc.o"
  "CMakeFiles/spammass_pagerank.dir/contribution.cc.o.d"
  "CMakeFiles/spammass_pagerank.dir/jump_vector.cc.o"
  "CMakeFiles/spammass_pagerank.dir/jump_vector.cc.o.d"
  "CMakeFiles/spammass_pagerank.dir/neumann.cc.o"
  "CMakeFiles/spammass_pagerank.dir/neumann.cc.o.d"
  "CMakeFiles/spammass_pagerank.dir/solver.cc.o"
  "CMakeFiles/spammass_pagerank.dir/solver.cc.o.d"
  "CMakeFiles/spammass_pagerank.dir/walk_enumeration.cc.o"
  "CMakeFiles/spammass_pagerank.dir/walk_enumeration.cc.o.d"
  "libspammass_pagerank.a"
  "libspammass_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spammass_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
