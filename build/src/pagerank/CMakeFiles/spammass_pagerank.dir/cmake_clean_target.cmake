file(REMOVE_RECURSE
  "libspammass_pagerank.a"
)
