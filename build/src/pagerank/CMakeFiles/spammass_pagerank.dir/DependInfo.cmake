
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pagerank/contribution.cc" "src/pagerank/CMakeFiles/spammass_pagerank.dir/contribution.cc.o" "gcc" "src/pagerank/CMakeFiles/spammass_pagerank.dir/contribution.cc.o.d"
  "/root/repo/src/pagerank/jump_vector.cc" "src/pagerank/CMakeFiles/spammass_pagerank.dir/jump_vector.cc.o" "gcc" "src/pagerank/CMakeFiles/spammass_pagerank.dir/jump_vector.cc.o.d"
  "/root/repo/src/pagerank/neumann.cc" "src/pagerank/CMakeFiles/spammass_pagerank.dir/neumann.cc.o" "gcc" "src/pagerank/CMakeFiles/spammass_pagerank.dir/neumann.cc.o.d"
  "/root/repo/src/pagerank/solver.cc" "src/pagerank/CMakeFiles/spammass_pagerank.dir/solver.cc.o" "gcc" "src/pagerank/CMakeFiles/spammass_pagerank.dir/solver.cc.o.d"
  "/root/repo/src/pagerank/walk_enumeration.cc" "src/pagerank/CMakeFiles/spammass_pagerank.dir/walk_enumeration.cc.o" "gcc" "src/pagerank/CMakeFiles/spammass_pagerank.dir/walk_enumeration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/spammass_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spammass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
