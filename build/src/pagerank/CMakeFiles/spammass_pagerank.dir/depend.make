# Empty dependencies file for spammass_pagerank.
# This may be replaced when dependencies are built.
