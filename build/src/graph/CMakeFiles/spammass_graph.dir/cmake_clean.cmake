file(REMOVE_RECURSE
  "CMakeFiles/spammass_graph.dir/graph_algorithms.cc.o"
  "CMakeFiles/spammass_graph.dir/graph_algorithms.cc.o.d"
  "CMakeFiles/spammass_graph.dir/graph_builder.cc.o"
  "CMakeFiles/spammass_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/spammass_graph.dir/graph_io.cc.o"
  "CMakeFiles/spammass_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/spammass_graph.dir/graph_stats.cc.o"
  "CMakeFiles/spammass_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/spammass_graph.dir/host_normalize.cc.o"
  "CMakeFiles/spammass_graph.dir/host_normalize.cc.o.d"
  "CMakeFiles/spammass_graph.dir/site_aggregation.cc.o"
  "CMakeFiles/spammass_graph.dir/site_aggregation.cc.o.d"
  "CMakeFiles/spammass_graph.dir/subgraph.cc.o"
  "CMakeFiles/spammass_graph.dir/subgraph.cc.o.d"
  "CMakeFiles/spammass_graph.dir/web_graph.cc.o"
  "CMakeFiles/spammass_graph.dir/web_graph.cc.o.d"
  "libspammass_graph.a"
  "libspammass_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spammass_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
