# Empty dependencies file for spammass_graph.
# This may be replaced when dependencies are built.
