file(REMOVE_RECURSE
  "libspammass_graph.a"
)
