
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bootstrap.cc" "src/core/CMakeFiles/spammass_core.dir/bootstrap.cc.o" "gcc" "src/core/CMakeFiles/spammass_core.dir/bootstrap.cc.o.d"
  "/root/repo/src/core/degree_outlier.cc" "src/core/CMakeFiles/spammass_core.dir/degree_outlier.cc.o" "gcc" "src/core/CMakeFiles/spammass_core.dir/degree_outlier.cc.o.d"
  "/root/repo/src/core/detector.cc" "src/core/CMakeFiles/spammass_core.dir/detector.cc.o" "gcc" "src/core/CMakeFiles/spammass_core.dir/detector.cc.o.d"
  "/root/repo/src/core/good_core.cc" "src/core/CMakeFiles/spammass_core.dir/good_core.cc.o" "gcc" "src/core/CMakeFiles/spammass_core.dir/good_core.cc.o.d"
  "/root/repo/src/core/label_io.cc" "src/core/CMakeFiles/spammass_core.dir/label_io.cc.o" "gcc" "src/core/CMakeFiles/spammass_core.dir/label_io.cc.o.d"
  "/root/repo/src/core/labels.cc" "src/core/CMakeFiles/spammass_core.dir/labels.cc.o" "gcc" "src/core/CMakeFiles/spammass_core.dir/labels.cc.o.d"
  "/root/repo/src/core/naive_schemes.cc" "src/core/CMakeFiles/spammass_core.dir/naive_schemes.cc.o" "gcc" "src/core/CMakeFiles/spammass_core.dir/naive_schemes.cc.o.d"
  "/root/repo/src/core/spam_mass.cc" "src/core/CMakeFiles/spammass_core.dir/spam_mass.cc.o" "gcc" "src/core/CMakeFiles/spammass_core.dir/spam_mass.cc.o.d"
  "/root/repo/src/core/trustrank.cc" "src/core/CMakeFiles/spammass_core.dir/trustrank.cc.o" "gcc" "src/core/CMakeFiles/spammass_core.dir/trustrank.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pagerank/CMakeFiles/spammass_pagerank.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/spammass_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spammass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
