file(REMOVE_RECURSE
  "CMakeFiles/spammass_core.dir/bootstrap.cc.o"
  "CMakeFiles/spammass_core.dir/bootstrap.cc.o.d"
  "CMakeFiles/spammass_core.dir/degree_outlier.cc.o"
  "CMakeFiles/spammass_core.dir/degree_outlier.cc.o.d"
  "CMakeFiles/spammass_core.dir/detector.cc.o"
  "CMakeFiles/spammass_core.dir/detector.cc.o.d"
  "CMakeFiles/spammass_core.dir/good_core.cc.o"
  "CMakeFiles/spammass_core.dir/good_core.cc.o.d"
  "CMakeFiles/spammass_core.dir/label_io.cc.o"
  "CMakeFiles/spammass_core.dir/label_io.cc.o.d"
  "CMakeFiles/spammass_core.dir/labels.cc.o"
  "CMakeFiles/spammass_core.dir/labels.cc.o.d"
  "CMakeFiles/spammass_core.dir/naive_schemes.cc.o"
  "CMakeFiles/spammass_core.dir/naive_schemes.cc.o.d"
  "CMakeFiles/spammass_core.dir/spam_mass.cc.o"
  "CMakeFiles/spammass_core.dir/spam_mass.cc.o.d"
  "CMakeFiles/spammass_core.dir/trustrank.cc.o"
  "CMakeFiles/spammass_core.dir/trustrank.cc.o.d"
  "libspammass_core.a"
  "libspammass_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spammass_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
