file(REMOVE_RECURSE
  "libspammass_core.a"
)
