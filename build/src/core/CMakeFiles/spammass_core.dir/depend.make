# Empty dependencies file for spammass_core.
# This may be replaced when dependencies are built.
