
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/spammass_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/spammass_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/grouping.cc" "src/eval/CMakeFiles/spammass_eval.dir/grouping.cc.o" "gcc" "src/eval/CMakeFiles/spammass_eval.dir/grouping.cc.o.d"
  "/root/repo/src/eval/mass_distribution.cc" "src/eval/CMakeFiles/spammass_eval.dir/mass_distribution.cc.o" "gcc" "src/eval/CMakeFiles/spammass_eval.dir/mass_distribution.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/spammass_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/spammass_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/precision.cc" "src/eval/CMakeFiles/spammass_eval.dir/precision.cc.o" "gcc" "src/eval/CMakeFiles/spammass_eval.dir/precision.cc.o.d"
  "/root/repo/src/eval/sampling.cc" "src/eval/CMakeFiles/spammass_eval.dir/sampling.cc.o" "gcc" "src/eval/CMakeFiles/spammass_eval.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/spammass_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spammass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spammass_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pagerank/CMakeFiles/spammass_pagerank.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/spammass_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
