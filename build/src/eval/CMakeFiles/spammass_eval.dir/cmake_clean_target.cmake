file(REMOVE_RECURSE
  "libspammass_eval.a"
)
