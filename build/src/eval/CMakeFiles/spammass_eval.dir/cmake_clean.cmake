file(REMOVE_RECURSE
  "CMakeFiles/spammass_eval.dir/experiment.cc.o"
  "CMakeFiles/spammass_eval.dir/experiment.cc.o.d"
  "CMakeFiles/spammass_eval.dir/grouping.cc.o"
  "CMakeFiles/spammass_eval.dir/grouping.cc.o.d"
  "CMakeFiles/spammass_eval.dir/mass_distribution.cc.o"
  "CMakeFiles/spammass_eval.dir/mass_distribution.cc.o.d"
  "CMakeFiles/spammass_eval.dir/metrics.cc.o"
  "CMakeFiles/spammass_eval.dir/metrics.cc.o.d"
  "CMakeFiles/spammass_eval.dir/precision.cc.o"
  "CMakeFiles/spammass_eval.dir/precision.cc.o.d"
  "CMakeFiles/spammass_eval.dir/sampling.cc.o"
  "CMakeFiles/spammass_eval.dir/sampling.cc.o.d"
  "libspammass_eval.a"
  "libspammass_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spammass_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
