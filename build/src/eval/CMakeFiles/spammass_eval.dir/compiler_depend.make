# Empty compiler generated dependencies file for spammass_eval.
# This may be replaced when dependencies are built.
