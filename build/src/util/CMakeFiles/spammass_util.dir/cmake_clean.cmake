file(REMOVE_RECURSE
  "CMakeFiles/spammass_util.dir/flags.cc.o"
  "CMakeFiles/spammass_util.dir/flags.cc.o.d"
  "CMakeFiles/spammass_util.dir/histogram.cc.o"
  "CMakeFiles/spammass_util.dir/histogram.cc.o.d"
  "CMakeFiles/spammass_util.dir/logging.cc.o"
  "CMakeFiles/spammass_util.dir/logging.cc.o.d"
  "CMakeFiles/spammass_util.dir/power_law.cc.o"
  "CMakeFiles/spammass_util.dir/power_law.cc.o.d"
  "CMakeFiles/spammass_util.dir/random.cc.o"
  "CMakeFiles/spammass_util.dir/random.cc.o.d"
  "CMakeFiles/spammass_util.dir/status.cc.o"
  "CMakeFiles/spammass_util.dir/status.cc.o.d"
  "CMakeFiles/spammass_util.dir/string_util.cc.o"
  "CMakeFiles/spammass_util.dir/string_util.cc.o.d"
  "CMakeFiles/spammass_util.dir/table.cc.o"
  "CMakeFiles/spammass_util.dir/table.cc.o.d"
  "CMakeFiles/spammass_util.dir/thread_pool.cc.o"
  "CMakeFiles/spammass_util.dir/thread_pool.cc.o.d"
  "libspammass_util.a"
  "libspammass_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spammass_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
