file(REMOVE_RECURSE
  "libspammass_util.a"
)
