# Empty dependencies file for spammass_util.
# This may be replaced when dependencies are built.
