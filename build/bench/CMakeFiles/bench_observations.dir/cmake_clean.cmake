file(REMOVE_RECURSE
  "CMakeFiles/bench_observations.dir/bench_observations.cc.o"
  "CMakeFiles/bench_observations.dir/bench_observations.cc.o.d"
  "bench_observations"
  "bench_observations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
