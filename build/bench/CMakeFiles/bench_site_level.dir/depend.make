# Empty dependencies file for bench_site_level.
# This may be replaced when dependencies are built.
