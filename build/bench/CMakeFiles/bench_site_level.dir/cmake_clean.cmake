file(REMOVE_RECURSE
  "CMakeFiles/bench_site_level.dir/bench_site_level.cc.o"
  "CMakeFiles/bench_site_level.dir/bench_site_level.cc.o.d"
  "bench_site_level"
  "bench_site_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_site_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
