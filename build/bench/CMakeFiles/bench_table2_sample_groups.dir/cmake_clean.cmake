file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sample_groups.dir/bench_table2_sample_groups.cc.o"
  "CMakeFiles/bench_table2_sample_groups.dir/bench_table2_sample_groups.cc.o.d"
  "bench_table2_sample_groups"
  "bench_table2_sample_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sample_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
