# Empty compiler generated dependencies file for bench_anomaly_elimination.
# This may be replaced when dependencies are built.
