file(REMOVE_RECURSE
  "CMakeFiles/bench_anomaly_elimination.dir/bench_anomaly_elimination.cc.o"
  "CMakeFiles/bench_anomaly_elimination.dir/bench_anomaly_elimination.cc.o.d"
  "bench_anomaly_elimination"
  "bench_anomaly_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anomaly_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
