# Empty dependencies file for bench_figure3_composition.
# This may be replaced when dependencies are built.
