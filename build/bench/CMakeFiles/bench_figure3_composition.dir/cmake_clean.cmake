file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_composition.dir/bench_figure3_composition.cc.o"
  "CMakeFiles/bench_figure3_composition.dir/bench_figure3_composition.cc.o.d"
  "bench_figure3_composition"
  "bench_figure3_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
