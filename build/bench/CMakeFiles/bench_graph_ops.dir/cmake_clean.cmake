file(REMOVE_RECURSE
  "CMakeFiles/bench_graph_ops.dir/bench_graph_ops.cc.o"
  "CMakeFiles/bench_graph_ops.dir/bench_graph_ops.cc.o.d"
  "bench_graph_ops"
  "bench_graph_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graph_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
