# Empty compiler generated dependencies file for bench_graph_ops.
# This may be replaced when dependencies are built.
