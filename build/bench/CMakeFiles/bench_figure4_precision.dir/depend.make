# Empty dependencies file for bench_figure4_precision.
# This may be replaced when dependencies are built.
