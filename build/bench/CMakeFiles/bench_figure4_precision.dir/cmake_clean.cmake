file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_precision.dir/bench_figure4_precision.cc.o"
  "CMakeFiles/bench_figure4_precision.dir/bench_figure4_precision.cc.o.d"
  "bench_figure4_precision"
  "bench_figure4_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
