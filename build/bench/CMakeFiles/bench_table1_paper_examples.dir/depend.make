# Empty dependencies file for bench_table1_paper_examples.
# This may be replaced when dependencies are built.
