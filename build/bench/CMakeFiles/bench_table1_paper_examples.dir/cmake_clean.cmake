file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_paper_examples.dir/bench_table1_paper_examples.cc.o"
  "CMakeFiles/bench_table1_paper_examples.dir/bench_table1_paper_examples.cc.o.d"
  "bench_table1_paper_examples"
  "bench_table1_paper_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_paper_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
