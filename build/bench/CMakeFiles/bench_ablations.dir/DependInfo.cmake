
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablations.cc" "bench/CMakeFiles/bench_ablations.dir/bench_ablations.cc.o" "gcc" "bench/CMakeFiles/bench_ablations.dir/bench_ablations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/spammass_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/spammass_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spammass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pagerank/CMakeFiles/spammass_pagerank.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/spammass_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spammass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
