# Empty dependencies file for bench_figure5_core_size.
# This may be replaced when dependencies are built.
