file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_mass_distribution.dir/bench_figure6_mass_distribution.cc.o"
  "CMakeFiles/bench_figure6_mass_distribution.dir/bench_figure6_mass_distribution.cc.o.d"
  "bench_figure6_mass_distribution"
  "bench_figure6_mass_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_mass_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
