# Empty compiler generated dependencies file for bench_figure6_mass_distribution.
# This may be replaced when dependencies are built.
