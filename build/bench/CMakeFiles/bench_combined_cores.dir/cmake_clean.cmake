file(REMOVE_RECURSE
  "CMakeFiles/bench_combined_cores.dir/bench_combined_cores.cc.o"
  "CMakeFiles/bench_combined_cores.dir/bench_combined_cores.cc.o.d"
  "bench_combined_cores"
  "bench_combined_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_combined_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
