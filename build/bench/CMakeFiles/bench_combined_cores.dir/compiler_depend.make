# Empty compiler generated dependencies file for bench_combined_cores.
# This may be replaced when dependencies are built.
